package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the qualitative facts the paper reports; the
// rendered reports themselves are exercised end to end. Experiments share
// cached suite builds, so the package test binary builds each workload
// once.

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id || rep.Body == "" {
		t.Fatalf("%s: malformed report %+v", id, rep)
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "WARNING") {
			t.Errorf("%s: %s", id, n)
		}
	}
	return rep
}

func TestFig2a(t *testing.T) {
	rep := runExp(t, "fig2a")
	if !strings.Contains(rep.Body, "176.gcc") {
		t.Error("gcc row missing")
	}
}

func TestFig2b(t *testing.T) {
	rep := runExp(t, "fig2b")
	if !strings.Contains(rep.Body, "file-roller") {
		t.Error("file-roller row missing")
	}
}

func TestTable1(t *testing.T) { runExp(t, "table1") }
func TestTable2(t *testing.T) { runExp(t, "table2") }
func TestFig4(t *testing.T)   { runExp(t, "fig4") }

func TestFig5a(t *testing.T) {
	rep := runExp(t, "fig5a")
	if !strings.Contains(rep.Body, "Oracle") {
		t.Error("oracle row missing")
	}
}

func TestFig5b(t *testing.T) { runExp(t, "fig5b") }

func TestTable3a(t *testing.T) {
	rep := runExp(t, "table3a")
	// Worst deviation note must stay under 8 points.
	assertDeviationUnder(t, rep, 8.0)
}

func TestTable3b(t *testing.T) {
	rep := runExp(t, "table3b")
	assertDeviationUnder(t, rep, 13.0)
}

func assertDeviationUnder(t *testing.T, rep *Report, limit float64) {
	t.Helper()
	for _, n := range rep.Notes {
		var dev float64
		if _, err := scanDeviation(n, &dev); err == nil {
			if dev > limit {
				t.Errorf("%s: deviation %.1f exceeds %.1f points", rep.ID, dev, limit)
			}
			return
		}
	}
	t.Errorf("%s: no deviation note found", rep.ID)
}

func scanDeviation(s string, out *float64) (int, error) {
	i := strings.Index(s, "deviation from the paper's table: ")
	if i < 0 {
		return 0, errNoMatch
	}
	var v float64
	_, err := sscanFloat(s[i+len("deviation from the paper's table: "):], &v)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

var errNoMatch = &parseErr{"no match"}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return e.s }

func sscanFloat(s string, out *float64) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, errNoMatch
	}
	var v float64
	frac := 0.1
	seenDot := false
	for i := 0; i < end; i++ {
		if s[i] == '.' {
			seenDot = true
			continue
		}
		d := float64(s[i] - '0')
		if !seenDot {
			v = v*10 + d
		} else {
			v += d * frac
			frac /= 10
		}
	}
	*out = v
	return 1, nil
}

func TestFig6a(t *testing.T) { runExp(t, "fig6a") }
func TestFig6b(t *testing.T) { runExp(t, "fig6b") }
func TestFig7a(t *testing.T) { runExp(t, "fig7a") }
func TestFig7b(t *testing.T) { runExp(t, "fig7b") }
func TestTable4(t *testing.T) {
	rep := runExp(t, "table4")
	if !strings.Contains(rep.Body, "gftp") {
		t.Error("gftp row missing")
	}
}
func TestFig8(t *testing.T) { runExp(t, "fig8") }
func TestFig9(t *testing.T) { runExp(t, "fig9") }

func TestOracleRegression(t *testing.T) { runExp(t, "oracle") }
func TestPreTranslate(t *testing.T)     { runExp(t, "pretranslate") }

func TestAblations(t *testing.T) {
	runExp(t, "ablation-tracelen")
	runExp(t, "ablation-reloc")
	runExp(t, "ablation-flush")
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "table1", "table2", "fig4", "fig5a", "fig5b",
		"table3a", "table3b", "fig6a", "fig6b", "fig7a", "fig7b",
		"table4", "fig8", "fig9", "oracle", "pretranslate",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestWarmup(t *testing.T) {
	rep := runExp(t, "warmup")
	if !strings.Contains(rep.Body, "gqview") {
		t.Error("warmup rows missing")
	}
}

func TestSpecInstr(t *testing.T) {
	rep := runExp(t, "spec-instr")
	if !strings.Contains(rep.Body, "176.gcc") {
		t.Error("gcc row missing")
	}
}

func TestShellTools(t *testing.T) {
	rep := runExp(t, "shelltools")
	if !strings.Contains(rep.Body, "wc first run, calc's cache") {
		t.Error("shelltools rows missing")
	}
}
