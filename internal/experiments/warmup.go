package experiments

import (
	"errors"
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/stats"
)

// Warmup measures the abstract's "improving performance over time" claim as
// a deployment curve: the five GUI applications are launched in sequence
// against one shared cache database, twice. Early first-launches are cold;
// later first-launches already reuse the libraries their predecessors
// translated (inter-application); second launches are fully warm
// (inter-execution plus accumulation).
func Warmup() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	tb := stats.NewTable("shared database, apps launched in order, two rounds",
		"launch", "application", "time", "vs cold", "reused", "translated")

	type sample struct {
		name  string
		ticks uint64
	}
	var firsts, seconds []sample
	coldBase := make(map[string]uint64)
	launch := 0
	for round := 1; round <= 2; round++ {
		for _, app := range gui.Apps {
			launch++
			// Cold baseline measured once per app, in isolation.
			if round == 1 {
				base, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg()})
				if err != nil {
					return nil, err
				}
				coldBase[app.Name] = base.Res.Stats.Ticks
			}
			v, err := app.Prog.NewVM(guiCfg(), app.Startup)
			if err != nil {
				return nil, err
			}
			rep, err := mgr.Prime(v)
			if errors.Is(err, core.ErrNoCache) {
				rep, err = mgr.PrimeInterApp(v)
			}
			if err != nil && !errors.Is(err, core.ErrNoCache) {
				return nil, err
			}
			res, err := v.Run()
			if err != nil {
				return nil, err
			}
			crep, err := mgr.Commit(v)
			if err != nil {
				return nil, err
			}
			res.Stats.Ticks += crep.Ticks
			imp := stats.Improvement(coldBase[app.Name], res.Stats.Ticks)
			tb.AddRow(fmt.Sprintf("%d", launch), app.Name, stats.Ms(res.Stats.Ticks),
				stats.Pct(imp), fmt.Sprintf("%d", rep.Installed),
				fmt.Sprintf("%d", res.Stats.TracesTranslated))
			if round == 1 {
				firsts = append(firsts, sample{app.Name, res.Stats.Ticks})
			} else {
				seconds = append(seconds, sample{app.Name, res.Stats.Ticks})
			}
		}
	}

	// The deployment claim: later first launches beat the first one, and
	// every second launch beats its first.
	laterBeatFirst := 0
	for _, s := range firsts[1:] {
		if s.ticks < firsts[0].ticks {
			laterBeatFirst++
		}
	}
	warmBeatsFirst := 0
	var warmSum, firstSum uint64
	for i := range seconds {
		if seconds[i].ticks < firsts[i].ticks {
			warmBeatsFirst++
		}
		warmSum += seconds[i].ticks
		firstSum += firsts[i].ticks
	}

	rep := &Report{ID: "warmup", Title: "Accumulation over time (GUI deployment curve)", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d/%d later first-launches beat the very first (inter-application reuse kicks in as the database grows)", laterBeatFirst, len(firsts)-1),
		fmt.Sprintf("%d/%d second launches beat their first; warm round is %s faster overall",
			warmBeatsFirst, len(seconds), stats.Pct(stats.Improvement(firstSum, warmSum))))
	if warmBeatsFirst != len(seconds) {
		rep.Notes = append(rep.Notes, "WARNING: some second launch was not faster")
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "warmup", Title: "Accumulation improves performance over time", Run: Warmup,
	})
}
