package experiments

import (
	"fmt"

	"persistcc/internal/instr"
	"persistcc/internal/loader"
	"persistcc/internal/stats"
	"persistcc/internal/workload"
)

// SpecInstr measures the abstract's headline SPEC claim: "the SPEC2K INT
// benchmark suite experiences a 26% improvement under dynamic binary
// instrumentation". Instrumentation inflates translation cost (more code
// generated per trace), so persistence saves more than in the
// uninstrumented Figure 5(a) runs.
func SpecInstr() (*Report, error) {
	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("same-input persistence, bbcount instrumentation, Reference inputs",
		"benchmark", "uninstrumented", "instrumented")
	var plainSum, instrSum float64
	for _, b := range suite {
		base, primed, err := sameInputImprovement(b.Prog, b.Ref[0], loader.Config{})
		if err != nil {
			return nil, err
		}
		plain := stats.Improvement(base, primed)
		baseI, primedI, err := sameInputImprovementTool(b.Prog, b.Ref[0], &instr.BBCount{PerInstruction: true})
		if err != nil {
			return nil, err
		}
		withTool := stats.Improvement(baseI, primedI)
		tb.AddRow(b.Name, stats.Pct(plain), stats.Pct(withTool))
		plainSum += plain
		instrSum += withTool
	}
	n := float64(len(suite))
	rep := &Report{ID: "spec-instr", Title: "SPEC2K INT under dynamic binary instrumentation", Body: tb.Render()}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"paper (abstract): 26%% average improvement under instrumentation; measured avg %.0f%% instrumented vs %.0f%% uninstrumented",
		100*instrSum/n, 100*plainSum/n),
		"the ordering (instrumentation raises every benchmark's benefit; gcc dominates) reproduces; the absolute suite average is lower because our per-benchmark overhead calibration follows §4.1's Figure 5 breakdowns, whose suite-wide mean is well under 26% — one of the paper's internal tensions (see EXPERIMENTS.md)")
	if instrSum <= plainSum {
		rep.Notes = append(rep.Notes, "WARNING: instrumentation did not increase persistence benefit")
	}
	return rep, nil
}

// sameInputImprovementTool is sameInputImprovement with an instrumentation
// tool attached to every run (a fresh tool instance per run: tool state is
// per-execution, and the tool key only depends on its configuration).
func sameInputImprovementTool(prog *workload.Program, in workload.Input, tool *instr.BBCount) (base, primed uint64, err error) {
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	mk := func() *instr.BBCount { c := *tool; return &c }
	b, err := run(runSpec{Prog: prog, In: in, Tool: mk()})
	if err != nil {
		return 0, 0, err
	}
	if _, err := run(runSpec{Prog: prog, In: in, Tool: mk(), Mgr: mgr, Commit: true}); err != nil {
		return 0, 0, err
	}
	p, err := run(runSpec{Prog: prog, In: in, Tool: mk(), Mgr: mgr, Prime: primeSame})
	if err != nil {
		return 0, 0, err
	}
	if b.Res.ExitCode != p.Res.ExitCode {
		return 0, 0, fmt.Errorf("%s/%s: instrumented primed run diverged", prog.Name, in.Name)
	}
	return b.Res.Stats.Ticks, p.Res.Stats.Ticks, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "spec-instr", Title: "SPEC2K INT improvement under instrumentation (abstract's 26%)", Run: SpecInstr,
	})
}
