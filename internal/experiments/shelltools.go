package experiments

import (
	"errors"
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/guestapps"
	"persistcc/internal/loader"
	"persistcc/internal/obj"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
)

// ShellTools demonstrates inter-application persistence on the repository's
// two real (hand-written, non-synthetic) guest programs: the calculator and
// wc both link libvr.so. With hashed placement the library maps at the same
// base in both, so wc's very first run reuses the library translations the
// calculator generated — the paper's intro scenario ("applications
// exhibiting cold code behavior are prevalent ... ranging from shell
// programs to ...") on actual programs rather than generated workloads.
func ShellTools() (*Report, error) {
	calcExe, calcLibs, err := guestapps.BuildCalc()
	if err != nil {
		return nil, err
	}
	wcExe, wcLibs, err := guestapps.BuildWC()
	if err != nil {
		return nil, err
	}
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	cfg := func(libs []*obj.File) loader.Config {
		return loader.Config{
			Placement: loader.PlaceHashed,
			Resolve: func(name string) (*obj.File, int64, error) {
				for _, l := range libs {
					if l.Name == name {
						return l, 1, nil
					}
				}
				return nil, 0, fmt.Errorf("no %s", name)
			},
		}
	}
	runOne := func(mgr *core.Manager, exe *obj.File, libs []*obj.File, input []uint64, prime bool) (*vm.Result, *core.PrimeReport, error) {
		p, err := loader.Load(exe, cfg(libs))
		if err != nil {
			return nil, nil, err
		}
		v := vm.New(p, vm.WithInput(input))
		var rep *core.PrimeReport
		if prime {
			rep, err = mgr.Prime(v)
			if errors.Is(err, core.ErrNoCache) {
				rep, err = mgr.PrimeInterApp(v)
			}
			if err != nil && !errors.Is(err, core.ErrNoCache) {
				return nil, nil, err
			}
		}
		res, err := v.Run()
		if err != nil {
			return nil, nil, err
		}
		if _, err := mgr.Commit(v); err != nil {
			return nil, nil, err
		}
		return res, rep, nil
	}

	calcIn := guestapps.ExprInput("(13+29)*(7-2)")
	wcIn := guestapps.TextInput("the quick brown fox\njumps over the lazy dog\n")

	// Cold wc baseline, measured against an empty database.
	baseMgr, baseCleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	wcCold, _, err := runOne(baseMgr, wcExe, wcLibs, wcIn, false)
	baseCleanup()
	if err != nil {
		return nil, err
	}

	calcRes, _, err := runOne(mgr, calcExe, calcLibs, calcIn, true)
	if err != nil {
		return nil, err
	}
	wcRes, wcPrime, err := runOne(mgr, wcExe, wcLibs, wcIn, true)
	if err != nil {
		return nil, err
	}
	if string(wcRes.Output) != string(wcCold.Output) {
		return nil, fmt.Errorf("shelltools: wc output diverged under inter-app reuse")
	}

	tb := stats.NewTable("calc and wc share libvr.so (hashed placement)",
		"run", "VM overhead", "total", "traces reused", "translated", "output")
	addRow := func(name string, res *vm.Result, reused int) {
		tb.AddRow(name, stats.Ms(res.Stats.TransTicks), stats.Ms(res.Stats.Ticks),
			fmt.Sprintf("%d", reused), fmt.Sprintf("%d", res.Stats.TracesTranslated),
			firstLine(res.Output))
	}
	addRow("calc (cold, commits)", calcRes, 0)
	addRow("wc cold (no database)", wcCold, 0)
	addRow("wc first run, calc's cache", wcRes, wcPrime.Installed)

	rep := &Report{ID: "shelltools", Title: "Inter-application persistence between real guest programs", Body: tb.Render()}
	ovhImp := stats.Improvement(wcCold.Stats.TransTicks, wcRes.Stats.TransTicks)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"wc's first-ever run reuses %d of the library translations calc generated, cutting its VM overhead by %s (%d fewer traces to translate)",
		wcPrime.Installed, stats.Pct(ovhImp), wcCold.Stats.TracesTranslated-wcRes.Stats.TracesTranslated),
		"for programs this tiny the fixed cache-probe cost exceeds the end-to-end gain — the paper's mechanism pays off once footprints reach GUI/compiler scale (fig8, oracle); what this experiment shows is the sharing itself on real, hand-written programs")
	if wcPrime.Installed == 0 {
		rep.Notes = append(rep.Notes, "WARNING: no library translations were shared")
	}
	if wcRes.Stats.TransTicks >= wcCold.Stats.TransTicks {
		rep.Notes = append(rep.Notes, "WARNING: VM overhead did not drop")
	}
	return rep, nil
}

func firstLine(out []byte) string {
	for i, b := range out {
		if b == '\n' {
			return string(out[:i])
		}
	}
	return string(out)
}

func init() {
	Registry = append(Registry, Entry{
		ID: "shelltools", Title: "Inter-application reuse between calc and wc (real programs)", Run: ShellTools,
	})
}
