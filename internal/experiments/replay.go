package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"persistcc/internal/core"
	"persistcc/internal/replay"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
)

// replayMinAvoided is the CI gate on replay-shipped first launches: the
// shipped cache must eliminate at least this fraction of the cold
// translation work (satellite: make replay-smoke).
const replayMinAvoided = 0.9

// ReplayWarming is the record-and-replay experiment: a vendor machine runs
// each GUI application cold, commits the persistent cache, takes a database
// snapshot and records one warm startup through the VM boundary. The
// snapshot and the recording ship with the application. On the user's
// machine the first launch primes from the shipped snapshot and re-executes
// under the replayer — so the launch is warm (almost no translation) and
// *verified*: registers, memory image, output and every cache-behavior
// counter must match the vendor's recording bit for bit, or the replayer
// reports the first divergent event. A tampered recording must be detected,
// not silently absorbed. Everything is deterministic; CI gates on the
// counts.
func ReplayWarming() (*Report, error) {
	suite, err := guiSuite()
	if err != nil {
		return nil, err
	}
	work, err := os.MkdirTemp("", "pcc-replay-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)

	tb := stats.NewTable("replay-shipped first launches (GUI suite)",
		"app", "events", "log bytes", "cold translated", "first-launch translated", "reused", "verified")
	var totEvents, totBytes, totCold, totWarm, totReused uint64
	var lastRec []byte

	for _, app := range suite.Apps {
		// Vendor machine: cold run populates the database.
		mgr, clean, err := tmpMgr()
		if err != nil {
			return nil, err
		}
		cold, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: mgr, Commit: true})
		if err != nil {
			clean()
			return nil, err
		}

		// Record the warm startup that ships with the application.
		recPath := filepath.Join(work, app.Name+".rec")
		rec, err := replay.NewRecorder(nil, recPath)
		if err != nil {
			clean()
			return nil, err
		}
		v, err := app.Prog.NewVM(guiCfg(), app.Startup, vm.WithBoundary(rec))
		if err != nil {
			clean()
			return nil, err
		}
		err = rec.Start(replay.StartInfo{
			Program:   app.Name,
			Placement: guiCfg().Placement,
			Input:     app.Startup.Words(),
			PID:       1,
			Proc:      v.Process(),
		})
		if err != nil {
			clean()
			return nil, err
		}
		if _, err := mgr.Prime(v); err != nil {
			clean()
			return nil, err
		}
		res, err := v.Run()
		if err != nil {
			clean()
			return nil, err
		}
		if err := rec.Finish(v, res); err != nil {
			clean()
			return nil, err
		}

		// Ship: the database snapshot travels next to the recording.
		shipDB := filepath.Join(work, app.Name+".db")
		if err := mgr.SnapshotTo(shipDB); err != nil {
			clean()
			return nil, err
		}
		clean()

		// User machine, first launch: only the shipped artifacts exist.
		data, err := os.ReadFile(recPath)
		if err != nil {
			return nil, err
		}
		lastRec = data
		rp, err := replay.NewReplayer(data)
		if err != nil {
			return nil, err
		}
		userMgr, err := core.NewManager(shipDB)
		if err != nil {
			return nil, err
		}
		vu, err := app.Prog.NewVM(guiCfg(), app.Startup, vm.WithBoundary(rp), vm.WithPID(rp.PID()))
		if err != nil {
			return nil, err
		}
		if err := rp.VerifyLayout(vu.Process()); err != nil {
			return nil, fmt.Errorf("replay: %s: shipped layout mismatch: %w", app.Name, err)
		}
		prep, err := userMgr.Prime(vu)
		if err != nil {
			return nil, err
		}
		if prep.Installed == 0 {
			return nil, fmt.Errorf("replay: %s: shipped snapshot primed nothing", app.Name)
		}
		resU, err := vu.Run()
		if err != nil {
			return nil, err
		}
		if err := rp.Finish(vu, resU); err != nil {
			// Self-package the divergence: recording plus shipped snapshot.
			bundleCrasher(&replay.Crasher{
				Name: "replay-" + app.Name,
				Kind: "divergence",
				Note: fmt.Sprintf("first launch diverged from the shipped recording: %v", err),
			}, data, shipDB)
			return nil, fmt.Errorf("replay: %s: %w", app.Name, err)
		}

		totEvents += rec.Events()
		totBytes += rec.Bytes()
		totCold += cold.Res.Stats.TracesTranslated
		totWarm += resU.Stats.TracesTranslated
		totReused += resU.Stats.TracesReused
		tb.AddRow(app.Name,
			fmt.Sprintf("%d", rec.Events()), fmt.Sprintf("%d", rec.Bytes()),
			fmt.Sprintf("%d", cold.Res.Stats.TracesTranslated),
			fmt.Sprintf("%d", resU.Stats.TracesTranslated),
			fmt.Sprintf("%d", resU.Stats.TracesReused), "bit-exact")
	}

	// Negative gate: a truncated recording must fail loudly, naming the
	// event where the log gave out — never replay as a silent success.
	cut := replay.Decode(lastRec)
	if len(cut.Events) < 6 {
		return nil, fmt.Errorf("replay: recording too short for the tamper gate")
	}
	trunc := lastRec[:cut.Events[len(cut.Events)-2].Offset]
	app := suite.Apps[len(suite.Apps)-1]
	rp, err := replay.NewReplayer(trunc)
	if err != nil {
		return nil, fmt.Errorf("replay: truncated prelude rejected too early: %w", err)
	}
	vt, err := app.Prog.NewVM(guiCfg(), app.Startup, vm.WithBoundary(rp), vm.WithPID(rp.PID()))
	if err != nil {
		return nil, err
	}
	var div *replay.DivergenceError
	resT, terr := vt.Run()
	if terr == nil {
		terr = rp.Finish(vt, resT)
	}
	if !errors.As(terr, &div) {
		return nil, fmt.Errorf("replay: truncated recording did not produce a divergence report (got %v)", terr)
	}

	avoided := 1 - float64(totWarm)/float64(totCold)
	rep := &Report{ID: "replay", Title: "Replay-driven cache warming: shipped recordings verify warm first launches", Body: tb.Render()}
	rep.AddMetric("apps_verified", float64(len(suite.Apps)))
	rep.AddMetric("recorded_events", float64(totEvents))
	rep.AddMetric("recorded_bytes", float64(totBytes))
	rep.AddMetric("first_launch_translated", float64(totWarm))
	rep.AddMetric("first_launch_reused", float64(totReused))
	rep.AddMetric("translation_avoided_pct", 100*avoided)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("all %d first launches replayed bit-exactly against their shipped recordings (registers, memory, output, cache counters)", len(suite.Apps)),
		fmt.Sprintf("translation avoided at first launch: %s (%d cold traces vs %d; gate >= %s)",
			stats.Pct(avoided), totCold, totWarm, stats.Pct(replayMinAvoided)),
		fmt.Sprintf("tamper gate: truncated recording rejected with a diagnostic naming event %d", div.Event))

	if avoided < replayMinAvoided {
		return rep, fmt.Errorf("replay: only %s of translation avoided at first launch, want >= %s",
			stats.Pct(avoided), stats.Pct(replayMinAvoided))
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "replay", Title: "Replay-driven cache warming: shipped recordings verify warm first launches", Run: ReplayWarming,
	})
}
