package experiments

import (
	"fmt"

	"persistcc/internal/loader"
	tracelog "persistcc/internal/metrics/trace"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
)

// TraceLog exercises the structured event log end to end: a cold gcc run
// (every trace a translate event) followed by a warm run of the same input
// (every reusable trace an install event), both recorded into
// internal/metrics/trace rings. The timeline is the post-hoc view of where
// the code cache's contents came from; its counts must agree exactly with
// the VM's own accounting, which makes them deterministic and CI-gateable.
func TraceLog() (*Report, error) {
	gcc, err := gccBench()
	if err != nil {
		return nil, err
	}
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	in := gcc.Train[0]

	coldLog := tracelog.NewLog(0)
	cold, err := run(runSpec{
		Prog: gcc.Prog, In: in, Mgr: mgr, Commit: true,
		Options: []vm.Option{vm.WithEventLog(coldLog)},
	})
	if err != nil {
		return nil, err
	}
	warmLog := tracelog.NewLog(0)
	warm, err := run(runSpec{
		Prog: gcc.Prog, In: in, Cfg: loader.Config{}, Mgr: mgr, Prime: primeSame,
		Options: []vm.Option{vm.WithEventLog(warmLog)},
	})
	if err != nil {
		return nil, err
	}

	count := func(l *tracelog.Log, kind string) int {
		n := 0
		for _, e := range l.Events() {
			if e.Kind == kind {
				n++
			}
		}
		return n
	}
	coldTranslate := count(coldLog, tracelog.KindTranslate)
	coldCommit := count(coldLog, tracelog.KindCommit)
	warmInstall := count(warmLog, tracelog.KindInstall)
	warmTranslate := count(warmLog, tracelog.KindTranslate)
	warmPrime := count(warmLog, tracelog.KindPrime)

	tb := stats.NewTable("176.gcc/"+in.Name+", event-log view of cold vs warm",
		"run", "time", "translate events", "install events", "prime/commit", "events total")
	tb.AddRow("cold", stats.Ms(cold.Res.Stats.Ticks), fmt.Sprintf("%d", coldTranslate),
		"0", fmt.Sprintf("%d commit", coldCommit), fmt.Sprintf("%d", coldLog.Len()))
	tb.AddRow("warm", stats.Ms(warm.Res.Stats.Ticks), fmt.Sprintf("%d", warmTranslate),
		fmt.Sprintf("%d", warmInstall), fmt.Sprintf("%d prime", warmPrime), fmt.Sprintf("%d", warmLog.Len()))

	rep := &Report{ID: "tracelog", Title: "Structured event-log timeline (cold vs warm)", Body: tb.Render()}
	rep.AddMetric("cold_ticks", float64(cold.Res.Stats.Ticks))
	rep.AddMetric("warm_ticks", float64(warm.Res.Stats.Ticks))
	rep.AddMetric("cold_translate_events", float64(coldTranslate))
	rep.AddMetric("warm_install_events", float64(warmInstall))
	rep.AddMetric("warm_translate_events", float64(warmTranslate))

	// The log must agree with the VM's own counters — a drifting event log
	// would silently lie in every timeline built from it.
	if uint64(coldTranslate) != cold.Res.Stats.TracesTranslated {
		rep.Notes = append(rep.Notes, fmt.Sprintf("WARNING: cold translate events %d != traces translated %d",
			coldTranslate, cold.Res.Stats.TracesTranslated))
	}
	if uint64(warmInstall) != warm.Res.Stats.TracesReused {
		rep.Notes = append(rep.Notes, fmt.Sprintf("WARNING: warm install events %d != traces reused %d",
			warmInstall, warm.Res.Stats.TracesReused))
	}
	if len(rep.Notes) == 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"event log agrees with VM counters: %d translations cold, %d installs + %d translations warm",
			coldTranslate, warmInstall, warmTranslate))
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "tracelog", Title: "Structured event-log timeline (cold vs warm)", Run: TraceLog,
	})
}
