package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"persistcc/internal/core"
	"persistcc/internal/replay"
)

// bundleCrasher self-packages an experiment failure into the crasher corpus
// (replay.DefaultDir, normally crashers/pending): the JSON artifact, an
// optional boundary recording, and — when a database directory is given — a
// cache-DB snapshot sidecar taken through a fresh manager. Bundling is
// strictly best-effort: it must never mask the failure being reported, so
// every error is printed and swallowed.
func bundleCrasher(c *replay.Crasher, recording []byte, dbDir string) {
	dir := replay.DefaultDir()
	if dbDir != "" {
		if mgr, err := core.NewManager(dbDir, core.WithLockTimeout(chaosLockWait)); err != nil {
			fmt.Fprintf(os.Stderr, "crasher bundle: open %s: %v\n", dbDir, err)
		} else {
			snap := c.Name + ".db"
			if err := mgr.SnapshotTo(filepath.Join(dir, snap)); err != nil {
				fmt.Fprintf(os.Stderr, "crasher bundle: snapshot %s: %v\n", dbDir, err)
			} else {
				c.Snapshot = snap
			}
		}
	}
	path, err := replay.WriteCrasher(nil, dir, c, recording)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crasher bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "crasher bundled: %s\n", path)
}
