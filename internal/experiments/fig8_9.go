package experiments

import (
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/loader"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// libCoverageSet measures an app's startup footprint restricted to library
// code, keyed by (library name, module-relative offset) so sets are
// comparable across applications.
func libCoverageSet(app *workload.GUIApp) (map[string]struct{}, error) {
	proc, err := app.Prog.Load(guiCfg())
	if err != nil {
		return nil, err
	}
	names := make([]string, len(proc.Modules))
	for i, m := range proc.Modules {
		names[i] = m.File.Name
	}
	cov, err := app.Prog.CoverageSet(guiCfg(), app.Startup)
	if err != nil {
		return nil, err
	}
	out := make(map[string]struct{})
	for k := range cov {
		mod := int(k >> 32)
		if mod == 0 || mod >= len(names) {
			continue
		}
		out[fmt.Sprintf("%s:%d", names[mod], uint32(k))] = struct{}{}
	}
	return out, nil
}

// Table4 reproduces Table 4: the fraction of each GUI application's library
// code found in the other applications' footprints (paper average ~70%).
func Table4() (*Report, error) {
	suite, err := guiSuite()
	if err != nil {
		return nil, err
	}
	sets := make([]map[string]struct{}, len(suite.Apps))
	names := make([]string, len(suite.Apps))
	for i, app := range suite.Apps {
		s, err := libCoverageSet(app)
		if err != nil {
			return nil, err
		}
		sets[i] = s
		names[i] = app.Name
	}
	tb := stats.NewTable("", append([]string{""}, names...)...)
	sum, cnt := 0.0, 0
	for i := range sets {
		row := []string{names[i]}
		for j := range sets {
			c := coverageOfStr(sets[i], sets[j])
			row = append(row, stats.Pct(c))
			if i != j {
				sum += c
				cnt++
			}
		}
		tb.AddRow(row...)
	}
	avg := sum / float64(cnt)
	rep := &Report{ID: "table4", Title: "Library code coverage between GUI applications", Body: tb.Render()}
	rep.Notes = append(rep.Notes, fmt.Sprintf("paper: pairwise library coverage averages ~70%%; measured %.0f%%", 100*avg))
	return rep, nil
}

func coverageOfStr(a, b map[string]struct{}) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// Fig8 reproduces Figure 8: GUI startup time under inter-application
// persistence. Columns: no persistence, same-input persistence, a
// library-only variant of the app's own cache (the paper's "Persistent
// Library Cache X" bars), and one column per other application's cache.
func Fig8() (*Report, error) {
	suite, err := guiSuite()
	if err != nil {
		return nil, err
	}
	apps := suite.Apps
	// Build each app's cache in its own database.
	mgrs := make([]*core.Manager, len(apps))
	caches := make([]*core.CacheFile, len(apps))
	for i, app := range apps {
		mgr, cleanup, err := tmpMgr()
		if err != nil {
			return nil, err
		}
		defer cleanup()
		mgrs[i] = mgr
		out, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: mgr, Commit: true})
		if err != nil {
			return nil, err
		}
		_ = out
		proc, err := app.Prog.Load(guiCfg())
		if err != nil {
			return nil, err
		}
		caches[i], err = mgr.Lookup(core.KeysFor(vm.New(proc)))
		if err != nil {
			return nil, err
		}
	}

	headers := []string{"application", "no persist", "same-input", "lib-only"}
	for _, a := range apps {
		headers = append(headers, "cache "+a.Name)
	}
	tb := stats.NewTable("startup time (improvement vs no persistence)", headers...)

	var interImpSum float64
	var interImpCnt int
	libOnlyClose := 0
	for i, app := range apps {
		base, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg()})
		if err != nil {
			return nil, err
		}
		baseTicks := base.Res.Stats.Ticks
		same, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: mgrs[i], Prime: primeSame})
		if err != nil {
			return nil, err
		}
		libOnly := stripExeTraces(caches[i], app.Name)
		lo, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: mgrs[i], Prime: primeFrom, FromFile: libOnly})
		if err != nil {
			return nil, err
		}
		row := []string{app.Name, stats.Ms(baseTicks),
			fmt.Sprintf("%s (%s)", stats.Ms(same.Res.Stats.Ticks), stats.Pct(stats.Improvement(baseTicks, same.Res.Stats.Ticks))),
			fmt.Sprintf("%s (%s)", stats.Ms(lo.Res.Stats.Ticks), stats.Pct(stats.Improvement(baseTicks, lo.Res.Stats.Ticks))),
		}
		// Paper: the library-only bar is within a second or two of
		// same-input on a ~20s startup — library code dominates GUI
		// startup. Scale-relative criterion: within 10% of the
		// no-persistence startup time.
		if float64(lo.Res.Stats.Ticks-same.Res.Stats.Ticks) <= 0.10*float64(baseTicks) {
			libOnlyClose++
		}
		for j := range apps {
			if j == i {
				row = append(row, "-")
				continue
			}
			p, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: mgrs[j], Prime: primeFrom, FromFile: caches[j]})
			if err != nil {
				return nil, err
			}
			if p.Res.ExitCode != base.Res.ExitCode {
				return nil, fmt.Errorf("%s with %s's cache diverged", app.Name, apps[j].Name)
			}
			imp := stats.Improvement(baseTicks, p.Res.Stats.Ticks)
			row = append(row, fmt.Sprintf("%s (%s)", stats.Ms(p.Res.Stats.Ticks), stats.Pct(imp)))
			interImpSum += imp
			interImpCnt++
		}
		tb.AddRow(row...)
	}
	avg := interImpSum / float64(interImpCnt)
	rep := &Report{ID: "fig8", Title: "Inter-application persistence (GUI startup)", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: inter-application reuse improves startup ~59%% on average; measured %.0f%%", 100*avg),
		fmt.Sprintf("library-only caches land close to same-input for %d/%d apps (paper: within a second or two)", libOnlyClose, len(apps)),
		"improvements trail the Table 4 coverage because identically named libraries mapped at different addresses fall back to re-translation (the paper's stated limitation; see ablation-reloc)")
	if avg <= 0 {
		rep.Notes = append(rep.Notes, "WARNING: inter-application persistence produced no average gain")
	}
	return rep, nil
}

// stripExeTraces returns a copy of the cache containing only traces from
// modules other than the application's executable.
func stripExeTraces(cf *core.CacheFile, exeName string) *core.CacheFile {
	out := *cf
	out.Traces = nil
	for _, t := range cf.Traces {
		if cf.Modules[t.Module].Path != exeName {
			out.Traces = append(out.Traces, t)
		}
	}
	return &out
}

// Fig9 reproduces Figure 9: persistent cache sizes, split into the trace
// (code) pool and the data-structure pool. Two paper facts: gcc's cache
// dwarfs the rest of SPEC, and the data structures consistently outweigh
// the traces themselves.
func Fig9() (*Report, error) {
	tb := stats.NewTable("", "workload", "traces (code pool)", "data structures", "total", "data/code")
	type sized struct {
		name       string
		code, data uint64
	}
	var rows []sized

	commitSize := func(name string, prog *workload.Program, inputs []workload.Input, cfg loader.Config) error {
		mgr, cleanup, err := tmpMgr()
		if err != nil {
			return err
		}
		defer cleanup()
		var last *core.CommitReport
		for _, in := range inputs {
			out, err := run(runSpec{Prog: prog, In: in, Cfg: cfg, Mgr: mgr, Prime: primeSame, Commit: true})
			if err != nil {
				return err
			}
			last = out.Commit
		}
		rows = append(rows, sized{name, last.CodePool, last.DataPool})
		return nil
	}

	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	for _, b := range suite {
		if err := commitSize(b.Name, b.Prog, b.Ref[:1], loader.Config{}); err != nil {
			return nil, err
		}
	}
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	for _, app := range gui.Apps {
		if err := commitSize(app.Name, app.Prog, []workload.Input{app.Startup}, guiCfg()); err != nil {
			return nil, err
		}
	}
	ora, err := oracleSuite()
	if err != nil {
		return nil, err
	}
	if err := commitSize("Oracle (accumulated)", ora.Prog, ora.Phases, loader.Config{}); err != nil {
		return nil, err
	}

	dataDominates := 0
	var gccTotal, maxOtherSpec uint64
	for _, r := range rows {
		tb.AddRow(r.name, stats.Bytes(r.code), stats.Bytes(r.data), stats.Bytes(r.code+r.data),
			fmt.Sprintf("%.2f", float64(r.data)/float64(r.code)))
		if r.data > r.code {
			dataDominates++
		}
		if r.name == "176.gcc" {
			gccTotal = r.code + r.data
		} else if len(r.name) > 0 && r.name[0] >= '0' && r.name[0] <= '9' && r.code+r.data > maxOtherSpec {
			maxOtherSpec = r.code + r.data
		}
	}
	rep := &Report{ID: "fig9", Title: "Persistent code cache sizes", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("data structures exceed trace bytes for %d/%d workloads (the paper's Figure 9 observation)", dataDominates, len(rows)),
		fmt.Sprintf("gcc's cache (%s) is the SPEC outlier (next largest: %s), as in the paper", stats.Bytes(gccTotal), stats.Bytes(maxOtherSpec)))
	return rep, nil
}
