package experiments

import (
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/instr"
	"persistcc/internal/isa"
	"persistcc/internal/loader"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// OracleRegression reproduces the §4.2 Oracle headline numbers: a unit test
// is the five phases run in sequence, each phase a separate process of the
// same binary. Measured configurations: native, under the VM, under the VM
// with a warm persistent cache database (the regression-test steady state),
// and the same pair with memory-reference instrumentation — the paper's
// "400% speedup ... in a regression testing environment".
func OracleRegression() (*Report, error) {
	ora, err := oracleSuite()
	if err != nil {
		return nil, err
	}
	total := func(tool vm.Tool, mgr *core.Manager, prime bool, commit bool, native bool) (uint64, error) {
		var sum uint64
		for _, ph := range ora.Phases {
			s := runSpec{Prog: ora.Prog, In: ph, Cfg: loader.Config{}, Tool: tool, Native: native}
			if mgr != nil {
				s.Mgr = mgr
				if prime {
					s.Prime = primeSame
				}
				s.Commit = commit
			}
			out, err := run(s)
			if err != nil {
				return 0, err
			}
			sum += out.Res.Stats.Ticks
		}
		return sum, nil
	}
	warmDB := func(tool vm.Tool) (*core.Manager, func(), error) {
		mgr, cleanup, err := tmpMgr()
		if err != nil {
			return nil, nil, err
		}
		// Warm-up pass: phases accumulate their translations.
		if _, err := total(tool, mgr, true, true, false); err != nil {
			cleanup()
			return nil, nil, err
		}
		return mgr, cleanup, nil
	}

	native, err := total(nil, nil, false, false, true)
	if err != nil {
		return nil, err
	}
	pin, err := total(nil, nil, false, false, false)
	if err != nil {
		return nil, err
	}
	mgr, cleanup, err := warmDB(nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	persisted, err := total(nil, mgr, true, false, false)
	if err != nil {
		return nil, err
	}
	mt := &instr.MemTrace{}
	pinInstr, err := total(mt, nil, false, false, false)
	if err != nil {
		return nil, err
	}
	mgrI, cleanupI, err := warmDB(mt)
	if err != nil {
		return nil, err
	}
	defer cleanupI()
	persistedInstr, err := total(mt, mgrI, true, false, false)
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("one unit test = Start,Mount,Open,Work,Close", "configuration", "time", "vs native", "vs VM")
	tb.AddRow("native", stats.Ms(native), "1.0x", "-")
	tb.AddRow("under VM", stats.Ms(pin), stats.Ratio(float64(pin)/float64(native)), "1.0x")
	tb.AddRow("VM + persistent caches", stats.Ms(persisted), stats.Ratio(float64(persisted)/float64(native)),
		stats.Pct(stats.Improvement(pin, persisted))+" better")
	tb.AddRow("VM + memtrace", stats.Ms(pinInstr), stats.Ratio(float64(pinInstr)/float64(native)), "-")
	tb.AddRow("VM + memtrace + persistent caches", stats.Ms(persistedInstr),
		stats.Ratio(float64(persistedInstr)/float64(native)),
		fmt.Sprintf("%.1fx speedup", float64(pinInstr)/float64(persistedInstr)))

	rep := &Report{ID: "oracle", Title: "Oracle regression testing", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: ~80s native, ~1300s under Pin (16x), ~490s with persistence (63%% better); measured %s slowdown, %s improvement",
			stats.Ratio(float64(pin)/float64(native)), stats.Pct(stats.Improvement(pin, persisted))),
		fmt.Sprintf("paper: memtrace ~4x faster with persistence (the 400%% headline); measured %.1fx",
			float64(pinInstr)/float64(persistedInstr)))
	if float64(pinInstr)/float64(persistedInstr) < 2 {
		rep.Notes = append(rep.Notes, "WARNING: instrumented persistence speedup below 2x")
	}
	return rep, nil
}

// PreTranslate reproduces the §5 comparison against static pre-translation:
// translating the whole binary offline expands it by roughly an order of
// magnitude, while a persistent cache holds only the code each run actually
// executed.
func PreTranslate() (*Report, error) {
	ora, err := oracleSuite()
	if err != nil {
		return nil, err
	}
	// Actual per-phase cache sizes.
	tb := stats.NewTable("", "configuration", "instructions", "size", "vs original binary")
	proc, err := ora.Prog.Load(loader.Config{})
	if err != nil {
		return nil, err
	}
	var staticInsts, binaryBytes uint64
	for _, m := range proc.Modules {
		staticInsts += uint64(len(m.File.Text)) / isa.InstSize
		binaryBytes += uint64(len(m.File.Text) + len(m.File.Data))
	}

	// Measure translated bytes-per-instruction from a real cache, then
	// project the full static pre-translation.
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	var phaseRows []string
	var lastCommit *core.CommitReport
	var firstCacheBytes uint64
	for i, ph := range ora.Phases {
		out, err := run(runSpec{Prog: ora.Prog, In: ph, Cfg: loader.Config{}, Mgr: mgr, Prime: primeSame, Commit: true})
		if err != nil {
			return nil, err
		}
		lastCommit = out.Commit
		if i == 0 {
			firstCacheBytes = out.Commit.CodePool + out.Commit.DataPool
		}
		phaseRows = append(phaseRows, ph.Name)
	}
	_ = phaseRows
	accumBytes := lastCommit.CodePool + lastCommit.DataPool
	var cachedInsts uint64
	// Bytes per translated instruction, from the accumulated cache.
	ks, err := keysForProg(ora.Prog)
	if err != nil {
		return nil, err
	}
	cf, err := mgr.Lookup(ks)
	if err != nil {
		return nil, err
	}
	for _, t := range cf.Traces {
		cachedInsts += uint64(len(t.Insts))
	}
	bytesPerInst := float64(accumBytes) / float64(cachedInsts)
	preBytes := uint64(bytesPerInst * float64(staticInsts))

	// The paper's 10x expansion figure was measured *with instrumentation
	// added*; project that too, from an instrumented cache.
	mgrI, cleanupI, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer cleanupI()
	outI, err := run(runSpec{Prog: ora.Prog, In: ora.Phases[0], Cfg: loader.Config{},
		Tool: &instr.BBCount{PerInstruction: true}, Mgr: mgrI, Commit: true})
	if err != nil {
		return nil, err
	}
	instBytesPerInst := float64(outI.Commit.CodePool+outI.Commit.DataPool) /
		float64(outI.Res.Stats.InstsTranslated)
	preInstBytes := uint64(instBytesPerInst * float64(staticInsts))

	tb.AddRow("original binary", fmt.Sprintf("%d", staticInsts), stats.Bytes(binaryBytes), "1.0x")
	tb.AddRow("static pre-translation (whole binary)", fmt.Sprintf("%d", staticInsts), stats.Bytes(preBytes),
		stats.Ratio(float64(preBytes)/float64(binaryBytes)))
	tb.AddRow("static pre-translation, instrumented", fmt.Sprintf("%d", staticInsts), stats.Bytes(preInstBytes),
		stats.Ratio(float64(preInstBytes)/float64(binaryBytes)))
	tb.AddRow("persistent cache (Start phase only)", "-", stats.Bytes(firstCacheBytes),
		stats.Ratio(float64(firstCacheBytes)/float64(binaryBytes)))
	tb.AddRow("persistent cache (all phases accumulated)", fmt.Sprintf("%d", cachedInsts), stats.Bytes(accumBytes),
		stats.Ratio(float64(accumBytes)/float64(binaryBytes)))

	rep := &Report{ID: "pretranslate", Title: "Static pre-translation vs persistent caching", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		"paper: pre-translation showed ~10x code expansion in field experiments, impractical for 100MB binaries; persistent caches contain only executed code",
		fmt.Sprintf("measured expansion %.1fx; a single phase's cache is %.1fx smaller than the pre-translated image",
			float64(preBytes)/float64(binaryBytes), float64(preBytes)/float64(firstCacheBytes)))
	return rep, nil
}

func keysForProg(p *workload.Program) (core.KeySet, error) {
	proc, err := p.Load(loader.Config{})
	if err != nil {
		return core.KeySet{}, err
	}
	return core.KeysFor(vm.New(proc)), nil
}
