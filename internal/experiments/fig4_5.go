package experiments

import (
	"fmt"

	"persistcc/internal/instr"
	"persistcc/internal/loader"
	"persistcc/internal/stats"
	"persistcc/internal/workload"
)

// Fig4 reproduces Figure 4: the code-invariance scale — the average
// inter-execution code coverage for the multi-input benchmarks and for
// Oracle's phases. gzip/bzip2 cluster near 100%; Oracle sits lowest (~55%).
func Fig4() (*Report, error) {
	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	type entry struct {
		name     string
		measured float64
		paper    float64
	}
	var entries []entry
	for _, b := range suite {
		if len(b.Ref) < 2 {
			continue
		}
		m, err := b.Prog.CoverageMatrix(loader.Config{}, b.Ref)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{b.Name, offDiagAvg(m), b.PaperCov})
	}
	ora, err := oracleSuite()
	if err != nil {
		return nil, err
	}
	om, err := ora.Prog.CoverageMatrix(loader.Config{}, ora.Phases)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"Oracle", offDiagAvg(om), 0.55})

	tb := stats.NewTable("", "benchmark", "avg coverage (measured)", "avg coverage (paper)", "scale")
	var oracleCov, minSpec float64 = 0, 1
	for _, e := range entries {
		bar := int(e.measured * 40)
		tb.AddRow(e.name, stats.Pct(e.measured), stats.Pct(e.paper), barString(bar, 40))
		if e.name == "Oracle" {
			oracleCov = e.measured
		} else if e.measured < minSpec {
			minSpec = e.measured
		}
	}
	rep := &Report{ID: "fig4", Title: "Code invariance between executions", Body: tb.Render()}
	if oracleCov < minSpec {
		rep.Notes = append(rep.Notes, "Oracle shows the least inter-execution coverage, as in the paper")
	} else {
		rep.Notes = append(rep.Notes, "WARNING: Oracle is not the lowest-coverage workload")
	}
	return rep, nil
}

func offDiagAvg(m [][]float64) float64 {
	sum, n := 0.0, 0
	for i := range m {
		for j := range m[i] {
			if i != j {
				sum += m[i][j]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func barString(n, max int) string {
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	b := make([]byte, max)
	for i := range b {
		if i < n {
			b[i] = '#'
		} else {
			b[i] = ' '
		}
	}
	return string(b)
}

// sameInputImprovement measures the benefit of priming a run with the
// persistent cache its own previous (identical) execution committed.
func sameInputImprovement(prog *workload.Program, in workload.Input, cfg loader.Config) (base, primed uint64, err error) {
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	b, err := run(runSpec{Prog: prog, In: in, Cfg: cfg})
	if err != nil {
		return 0, 0, err
	}
	if _, err := run(runSpec{Prog: prog, In: in, Cfg: cfg, Mgr: mgr, Commit: true}); err != nil {
		return 0, 0, err
	}
	p, err := run(runSpec{Prog: prog, In: in, Cfg: cfg, Mgr: mgr, Prime: primeSame})
	if err != nil {
		return 0, 0, err
	}
	if b.Res.ExitCode != p.Res.ExitCode {
		return 0, 0, fmt.Errorf("%s/%s: primed run diverged (%d vs %d)", prog.Name, in.Name, p.Res.ExitCode, b.Res.ExitCode)
	}
	return b.Res.Stats.Ticks, p.Res.Stats.Ticks, nil
}

// Fig5a reproduces Figure 5(a): same-input persistence improvements for
// SPEC2K (Train and Reference), the GUI applications and Oracle. Train
// inputs benefit more than Reference (shorter runs amortize less); GUI
// startup improves ~90%; Oracle's whole regression test ~63%.
func Fig5a() (*Report, error) {
	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("", "benchmark", "ref improvement", "train improvement")
	rep := &Report{ID: "fig5a", Title: "Same-input persistence improvement"}
	var gccRef, trainAvg, refAvg float64
	for _, b := range suite {
		bRef, pRef, err := sameInputImprovement(b.Prog, b.Ref[0], loader.Config{})
		if err != nil {
			return nil, err
		}
		bTr, pTr, err := sameInputImprovement(b.Prog, b.Train[0], loader.Config{})
		if err != nil {
			return nil, err
		}
		ri := stats.Improvement(bRef, pRef)
		ti := stats.Improvement(bTr, pTr)
		tb.AddRow(b.Name, stats.Pct(ri), stats.Pct(ti))
		rep.AddMetric(b.Name+"_ref_cold_ticks", float64(bRef))
		rep.AddMetric(b.Name+"_ref_warm_ticks", float64(pRef))
		rep.AddMetric(b.Name+"_train_cold_ticks", float64(bTr))
		rep.AddMetric(b.Name+"_train_warm_ticks", float64(pTr))
		refAvg += ri
		trainAvg += ti
		if b.Name == "176.gcc" {
			gccRef = ri
		}
	}
	refAvg /= float64(len(suite))
	trainAvg /= float64(len(suite))

	// GUI startup.
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	var guiAvg float64
	for _, app := range gui.Apps {
		b, p, err := sameInputImprovement(app.Prog, app.Startup, guiCfg())
		if err != nil {
			return nil, err
		}
		imp := stats.Improvement(b, p)
		tb.AddRow(app.Name, stats.Pct(imp), "-")
		rep.AddMetric(app.Name+"_cold_ticks", float64(b))
		rep.AddMetric(app.Name+"_warm_ticks", float64(p))
		guiAvg += imp
	}
	guiAvg /= float64(len(gui.Apps))

	// Oracle: every phase primed by its own phase's cache.
	ora, err := oracleSuite()
	if err != nil {
		return nil, err
	}
	var oBase, oPrimed uint64
	for _, ph := range ora.Phases {
		b, p, err := sameInputImprovement(ora.Prog, ph, loader.Config{})
		if err != nil {
			return nil, err
		}
		oBase += b
		oPrimed += p
	}
	oImp := stats.Improvement(oBase, oPrimed)
	tb.AddRow("Oracle (all phases)", stats.Pct(oImp), "-")
	rep.AddMetric("oracle_cold_ticks", float64(oBase))
	rep.AddMetric("oracle_warm_ticks", float64(oPrimed))
	rep.AddMetric("ref_improvement_avg", refAvg)
	rep.AddMetric("train_improvement_avg", trainAvg)
	rep.AddMetric("gui_improvement_avg", guiAvg)

	rep.Body = tb.Render()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: train gains exceed ref gains (shorter runs amortize less); measured avg train %.0f%% vs ref %.0f%%", 100*trainAvg, 100*refAvg),
		fmt.Sprintf("paper: gcc >30%% on ref; measured %.0f%%", 100*gccRef),
		fmt.Sprintf("paper: GUI ~90%%; measured avg %.0f%%", 100*guiAvg),
		fmt.Sprintf("paper: Oracle 63%%; measured %.0f%%", 100*oImp))
	if trainAvg <= refAvg {
		rep.Notes = append(rep.Notes, "WARNING: train did not beat ref")
	}
	return rep, nil
}

// Fig5b reproduces Figure 5(b): per-benchmark execution time as a multiple
// of native, split into translated-code time and VM overhead, with and
// without basic-block instrumentation. Instrumentation increases the VM
// overhead (by up to ~25% in the paper) and the translated-code time.
func Fig5b() (*Report, error) {
	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("", "benchmark", "native", "VM: exec+VMovh", "VM+bbcount: exec+VMovh", "instr. VM ovh increase")
	worstIncrease := 0.0
	for _, b := range suite {
		nat, err := run(runSpec{Prog: b.Prog, In: b.Ref[0], Native: true})
		if err != nil {
			return nil, err
		}
		plain, err := run(runSpec{Prog: b.Prog, In: b.Ref[0]})
		if err != nil {
			return nil, err
		}
		instrumented, err := run(runSpec{Prog: b.Prog, In: b.Ref[0], Tool: &instr.BBCount{PerInstruction: true}})
		if err != nil {
			return nil, err
		}
		n := float64(nat.Res.Stats.Ticks)
		p, pi := &plain.Res.Stats, &instrumented.Res.Stats
		inc := float64(pi.TransTicks)/float64(p.TransTicks) - 1
		tb.AddRow(b.Name, "1.0x",
			fmt.Sprintf("%.2fx+%.2fx", float64(p.TranslatedTicks())/n, float64(p.TransTicks)/n),
			fmt.Sprintf("%.2fx+%.2fx", float64(pi.TranslatedTicks())/n, float64(pi.TransTicks)/n),
			stats.Pct(inc))
		if inc > worstIncrease {
			worstIncrease = inc
		}
	}
	rep := &Report{ID: "fig5b", Title: "SPEC2K ref overhead breakdown (multiples of native)", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: detailed basic-block profiling increases VM overhead by up to ~25%%; measured max increase %.0f%%", 100*worstIncrease))
	return rep, nil
}
