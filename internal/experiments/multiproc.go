package experiments

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"persistcc/internal/cacheserver"
	"persistcc/internal/core"
	"persistcc/internal/stats"
)

// Multiproc measures multi-process code-cache sharing over the wire
// protocol: the five GUI applications launch as concurrent "processes",
// each with its own private fallback database, all pointed at one shared
// cache daemon (internal/cacheserver). Launches are staggered in waves —
// the realistic desktop-login shape — so later processes find the shared
// libraries their predecessors already published and install them over the
// wire instead of translating.
//
// The control arm is the status quo the paper's §6 deployment discussion
// argues against: the same staggered launches, each process accumulating
// into its own independent local database, where nothing is ever shared
// and every process pays full translation.
func Multiproc() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	apps := gui.Apps
	// Wave 1 seeds the server; later waves launch two processes at a time,
	// concurrently, so the server sees overlapping fetches and publishes.
	var waves [][]int
	waves = append(waves, []int{0})
	for i := 1; i < len(apps); i += 2 {
		w := []int{i}
		if i+1 < len(apps) {
			w = append(w, i+1)
		}
		waves = append(waves, w)
	}

	type procOut struct {
		ticks      uint64
		translated uint64 // instructions translated by this process
		reused     int    // traces installed from a cache
		remote     uint64 // traces served by the daemon
	}

	// launchOne simulates one OS process: fresh VM, fresh private database,
	// fresh client connection.
	launchOne := func(appIdx int, addr string) (*procOut, error) {
		app := apps[appIdx]
		dir, err := os.MkdirTemp("", "pcc-mp-proc-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		local, err := core.NewManager(dir)
		if err != nil {
			return nil, err
		}
		var mgr cacheserver.Manager = local
		if addr != "" {
			client := cacheserver.NewClient(addr)
			defer client.Close()
			mgr = cacheserver.NewFallback(client, local)
		}
		v, err := app.Prog.NewVM(guiCfg(), app.Startup)
		if err != nil {
			return nil, err
		}
		rep, err := mgr.Prime(v)
		if errors.Is(err, core.ErrNoCache) {
			rep, err = mgr.PrimeInterApp(v)
		}
		if err != nil && !errors.Is(err, core.ErrNoCache) {
			return nil, err
		}
		res, err := v.Run()
		if err != nil {
			return nil, err
		}
		crep, err := mgr.Commit(v)
		if err != nil {
			return nil, err
		}
		res.Stats.Ticks += crep.Ticks
		return &procOut{
			ticks:      res.Stats.Ticks,
			translated: res.Stats.InstsTranslated,
			reused:     rep.Installed,
			remote:     res.Stats.RemoteHits,
		}, nil
	}

	// runScenario launches every wave; processes within a wave run
	// concurrently and the next wave starts only after the previous one has
	// committed (the stagger that lets sharing kick in).
	runScenario := func(addr string) ([]*procOut, error) {
		outs := make([]*procOut, len(apps))
		errs := make([]error, len(apps))
		for _, wave := range waves {
			var wg sync.WaitGroup
			for _, idx := range wave {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					outs[idx], errs[idx] = launchOne(idx, addr)
				}(idx)
			}
			wg.Wait()
			for _, idx := range wave {
				if errs[idx] != nil {
					return nil, fmt.Errorf("%s: %w", apps[idx].Name, errs[idx])
				}
			}
		}
		return outs, nil
	}

	// Shared arm: one daemon serving one database to every process.
	serverDir, err := os.MkdirTemp("", "pcc-mp-server-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(serverDir)
	serverMgr, err := core.NewManager(serverDir)
	if err != nil {
		return nil, err
	}
	srv, err := cacheserver.New(serverMgr)
	if err != nil {
		return nil, err
	}
	ln, err := cacheserver.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln) }()
	shared, err := runScenario(ln.Addr().String())
	srv.Close()
	<-serveDone
	if err != nil {
		return nil, err
	}

	// Independent arm: no daemon, one private database per process.
	indep, err := runScenario("")
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("staggered concurrent launches, shared daemon vs private databases",
		"wave", "application", "shared time", "shared transl", "remote traces", "indep time", "indep transl")
	var sharedTransl, indepTransl, sharedTicks, indepTicks uint64
	for w, wave := range waves {
		for _, idx := range wave {
			s, n := shared[idx], indep[idx]
			tb.AddRow(fmt.Sprintf("%d", w+1), apps[idx].Name,
				stats.Ms(s.ticks), fmt.Sprintf("%d", s.translated), fmt.Sprintf("%d", s.remote),
				stats.Ms(n.ticks), fmt.Sprintf("%d", n.translated))
			sharedTransl += s.translated
			indepTransl += n.translated
			sharedTicks += s.ticks
			indepTicks += n.ticks
		}
	}

	rep := &Report{ID: "multiproc", Title: "Multi-process sharing through the cache daemon", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("total translated instructions: %d shared vs %d independent (%s less translation work)",
			sharedTransl, indepTransl, stats.Pct(stats.Improvement(indepTransl, sharedTransl))),
		fmt.Sprintf("total startup time: %s shared vs %s independent (%s)",
			stats.Ms(sharedTicks), stats.Ms(indepTicks), stats.Pct(stats.Improvement(indepTicks, sharedTicks))))
	if sharedTransl >= indepTransl {
		rep.Notes = append(rep.Notes, "WARNING: shared daemon did not reduce total translation")
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "multiproc", Title: "Multi-process sharing through the cache daemon", Run: Multiproc,
	})
}
