package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"persistcc/internal/core"
	"persistcc/internal/stats"
)

// Migrate is the migration smoke gate (make migrate-smoke): build a legacy
// fixture database, corrupt one entry, migrate in place, and prove the
// promised end state — corrupt input quarantined rather than laundered
// into the new format, every surviving entry deep-verified and warm-
// servable, recovery a no-op afterwards. Any violation is a non-zero
// pcc-bench exit, so CI can gate on it directly.
func Migrate() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	apps := gui.Apps[:3] // pinned fixture workload: three apps sharing the GUI libraries
	dir, err := os.MkdirTemp("", "pcc-migrate-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Stage 1: legacy fixture database + per-app cold reference outputs.
	legacy, err := core.NewManager(dir)
	if err != nil {
		return nil, err
	}
	type ref struct {
		ks    core.KeySet
		ticks uint64
	}
	refs := make([]ref, len(apps))
	for i, app := range apps {
		out, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: legacy, Commit: true})
		if err != nil {
			return nil, err
		}
		_, ks := core.BuildCacheFile(out.VM)
		refs[i] = ref{ks: ks, ticks: out.Res.Stats.Ticks}
	}
	bytesBefore, err := diskBytes(dir)
	if err != nil {
		return nil, err
	}

	// Stage 2: corrupt the middle app's cache file with a single mid-file
	// bit flip — the hardest corruption to catch without hashing.
	victim := filepath.Join(dir, refs[1].ks.CacheFileName())
	b, err := os.ReadFile(victim)
	if err != nil {
		return nil, fmt.Errorf("migrate: fixture entry missing: %w", err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		return nil, err
	}

	// Stage 3: migrate in place with a store-format manager.
	mgr, err := core.NewManager(dir, core.WithStore())
	if err != nil {
		return nil, err
	}
	mrep, err := mgr.MigrateToStore()
	if err != nil {
		return nil, fmt.Errorf("migrate: migration failed: %w", err)
	}
	if mrep.Scanned != len(apps) || mrep.Migrated != len(apps)-1 || mrep.Quarantined != 1 {
		return nil, fmt.Errorf("migrate: scanned/migrated/quarantined = %d/%d/%d, want %d/%d/1",
			mrep.Scanned, mrep.Migrated, mrep.Quarantined, len(apps), len(apps)-1)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.pcc")); len(leftovers) != 0 {
		return nil, fmt.Errorf("migrate: %d legacy files left behind", len(leftovers))
	}

	// Stage 4: deep verification — recovery re-verifies every migrated
	// entry through the manifest+blob path and must quarantine nothing.
	rrep, err := mgr.RecoverIndex()
	if err != nil {
		return nil, fmt.Errorf("migrate: post-migration recovery failed: %w", err)
	}
	if rrep.FilesQuarantined != 0 {
		return nil, fmt.Errorf("migrate: recovery quarantined %d migrated entries", rrep.FilesQuarantined)
	}

	// Stage 5: the surviving entries warm-serve through a deep-verifying
	// manager; the corrupted one is a clean miss.
	deep, err := core.NewManager(dir, core.WithStore(), core.WithDeepVerify())
	if err != nil {
		return nil, err
	}
	var warmTicks uint64
	for i, app := range apps {
		if i == 1 {
			if _, err := deep.Lookup(refs[i].ks); !errors.Is(err, core.ErrNoCache) {
				return nil, fmt.Errorf("migrate: corrupt entry should be a miss, got %v", err)
			}
			continue
		}
		out, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(), Mgr: deep, Prime: primeSame})
		if err != nil {
			return nil, err
		}
		if out.Prime == nil || out.Prime.Installed == 0 {
			return nil, fmt.Errorf("migrate: %s primed nothing from the migrated database", app.Name)
		}
		if out.Res.Stats.Ticks >= refs[i].ticks {
			return nil, fmt.Errorf("migrate: %s warm run (%d ticks) not faster than cold (%d)",
				app.Name, out.Res.Stats.Ticks, refs[i].ticks)
		}
		warmTicks += out.Res.Stats.Ticks
	}
	bytesAfter, err := diskBytes(dir)
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("three-app legacy fixture, one entry corrupted, migrated in place",
		"stage", "result")
	tb.AddRow("fixture", fmt.Sprintf("%d legacy entries, %d bytes", len(apps), bytesBefore))
	tb.AddRow("migrate", fmt.Sprintf("%d migrated, %d quarantined, %d blobs added (%d shared)",
		mrep.Migrated, mrep.Quarantined, mrep.BlobsAdded, mrep.BlobsShared))
	tb.AddRow("deep verify", "recovery green, 0 further quarantines")
	tb.AddRow("warm serve", fmt.Sprintf("%d apps primed from manifests, corrupt app a clean miss", len(apps)-1))
	tb.AddRow("database", fmt.Sprintf("%d bytes after migration", bytesAfter))

	rep := &Report{ID: "migrate", Title: "Legacy-to-store migration: quarantine, deep verify, warm serve", Body: tb.Render()}
	rep.AddMetric("migrate_warm_ticks", float64(warmTicks))
	rep.AddMetric("migrate_quarantined", float64(mrep.Quarantined))
	rep.AddMetric("migrate_blobs_added", float64(mrep.BlobsAdded))
	rep.Notes = append(rep.Notes,
		"migration refuses to launder corruption: the flipped-bit entry is quarantined, not converted",
		fmt.Sprintf("surviving entries re-serve warm through the deep verifier; database %d -> %d bytes", bytesBefore, bytesAfter))
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "migrate", Title: "Legacy-to-store migration smoke", Run: Migrate,
	})
}
