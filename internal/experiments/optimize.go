package experiments

import (
	"fmt"

	"persistcc/internal/guestopt"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// Optimize is the guestopt ablation: the five GUI applications run warm —
// primed from a cache committed by an identically configured cold run —
// under each optimizer configuration, and the warm dispatch-path ticks are
// compared against the unoptimized baseline. Each pass also runs alone, so
// the results artifact carries a per-pass attribution of the win. Ticks are
// virtual and deterministic: the same build produces the same table bit for
// bit.
//
// The measured quantity is time spent in the dispatcher and the code cache:
// cached execution + dispatch + indirect lookups + link patching + analysis
// ops. Emulation-unit time (syscall and signal emulation) is excluded — it
// is OS emulation, not guest code, and no translation-time optimizer can
// touch it. On this suite file-roller's signal-heavy session alone spends
// ~12M ticks in the emulation unit, which would otherwise drown the code
// signal entirely.

// optimizeMinSaved is the acceptance bar: all passes together must cut warm
// dispatch-path ticks by at least this fraction on the GUI suite.
const optimizeMinSaved = 0.10

// codeTicks is the dispatch-path time of one run: everything the VM charges
// while finding, entering and running translated code, excluding the
// emulation unit.
func codeTicks(s *vm.Stats) uint64 {
	return s.ExecTicks + s.DispatchTicks + s.IndirectTicks + s.LinkTicks + s.OpTicks
}

// optimizeArms lists the ablation configurations in presentation order.
func optimizeArms() []struct {
	name string
	cfg  guestopt.Config
} {
	return []struct {
		name string
		cfg  guestopt.Config
	}{
		{"baseline (no optimizer)", guestopt.Config{}},
		{"constfold only", guestopt.Config{ConstFold: true}},
		{"deadcode only", guestopt.Config{DeadCode: true}},
		{"deadflag only", guestopt.Config{DeadFlag: true}},
		{"loadelim only", guestopt.Config{LoadElim: true}},
		{"all passes", guestopt.All()},
	}
}

// optimizeMetricKey turns an arm name into a stable metric key fragment.
var optimizeMetricKey = map[string]string{
	"baseline (no optimizer)": "baseline",
	"constfold only":          "constfold",
	"deadcode only":           "deadcode",
	"deadflag only":           "deadflag",
	"loadelim only":           "loadelim",
	"all passes":              "all",
}

// optimizeInput scales an app's startup into a longer session so the warm
// measurement is dominated by steady-state execution, not entry effects.
func optimizeInput(app *workload.GUIApp) workload.Input {
	in := workload.Input{Name: app.Startup.Name + ".opt"}
	for _, u := range app.Startup.Units {
		u.Iters *= 8
		in.Units = append(in.Units, u)
	}
	return in
}

// optimizeArmTicks runs the whole GUI suite under one optimizer
// configuration — cold commit, then warm primed run — and returns the
// summed warm dispatch-path ticks plus install/removal totals.
func optimizeArmTicks(cfg guestopt.Config, gui *workload.GUISuite) (warmTicks, optimizedTraces, removedInsts, rejects uint64, err error) {
	mgr, cleanup, err := tmpMgr()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cleanup()
	opts := func() []vm.Option {
		if !cfg.Enabled() {
			return nil
		}
		return []vm.Option{vm.WithOptimizer(guestopt.New(cfg))}
	}
	for _, app := range gui.Apps {
		in := optimizeInput(app)
		cold, err := run(runSpec{Prog: app.Prog, In: in, Cfg: guiCfg(), Mgr: mgr, Commit: true, Options: opts()})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		optimizedTraces += cold.Res.Stats.TracesOptimized
		removedInsts += cold.Res.Stats.OptInstsRemoved
		rejects += cold.Res.Stats.OptRejects
		warm, err := run(runSpec{Prog: app.Prog, In: in, Cfg: guiCfg(), Mgr: mgr, Prime: primeSame, Options: opts()})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if warm.Prime == nil || warm.Prime.Installed == 0 {
			return 0, 0, 0, 0, fmt.Errorf("optimize: %s warm run primed nothing", app.Name)
		}
		if warm.Res.Stats.TracesOptimized != 0 {
			return 0, 0, 0, 0, fmt.Errorf("optimize: %s warm run re-optimized %d persisted traces", app.Name, warm.Res.Stats.TracesOptimized)
		}
		warmTicks += codeTicks(&warm.Res.Stats)
	}
	return warmTicks, optimizedTraces, removedInsts, rejects, nil
}

// Optimize runs the ablation and gates on the all-passes arm.
func Optimize() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable("five GUI apps, warm runs primed from optimized caches",
		"configuration", "warm dispatch ticks", "vs baseline", "traces optimized", "insts removed")

	rep := &Report{ID: "optimize", Title: "Guest-IR optimizer ablation (warm dispatch ticks per pass)"}
	var base uint64
	var allSaved float64
	for _, arm := range optimizeArms() {
		ticks, traces, removed, rejects, err := optimizeArmTicks(arm.cfg, gui)
		if err != nil {
			return nil, err
		}
		if rejects != 0 {
			return nil, fmt.Errorf("optimize: %s: equivalence checker rejected %d engine rewrites", arm.name, rejects)
		}
		key := optimizeMetricKey[arm.name]
		rep.AddMetric("optimize_"+key+"_warm_ticks", float64(ticks))
		if key == "baseline" {
			base = ticks
			tb.AddRow(arm.name, fmt.Sprintf("%d", ticks), "—", "—", "—")
			continue
		}
		saved := stats.Improvement(base, ticks)
		rep.AddMetric("optimize_"+key+"_saved_pct", 100*saved)
		tb.AddRow(arm.name, fmt.Sprintf("%d", ticks), stats.Pct(saved),
			fmt.Sprintf("%d", traces), fmt.Sprintf("%d", removed))
		if key == "all" {
			allSaved = saved
			rep.AddMetric("optimize_traces", float64(traces))
			rep.AddMetric("optimize_insts_removed", float64(removed))
		}
	}
	rep.Body = tb.Render()
	rep.Notes = append(rep.Notes,
		"warm runs load pre-optimized traces from the store: the passes run once at translation time, never on the warm path",
		"loadelim alone rewrites loads into register copies (same instruction count, so ~0 ticks saved); its win lands in composition, when constfold propagates the copies and deadcode deletes them",
		fmt.Sprintf("all passes together cut warm dispatch ticks by %s (gate: >= %s)", stats.Pct(allSaved), stats.Pct(optimizeMinSaved)))
	if allSaved < optimizeMinSaved {
		return rep, fmt.Errorf("optimize: all passes saved only %s of warm dispatch ticks, want >= %s",
			stats.Pct(allSaved), stats.Pct(optimizeMinSaved))
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "optimize", Title: "Guest-IR optimizer ablation (per-pass warm ticks)", Run: Optimize,
	})
}
