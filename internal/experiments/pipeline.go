package experiments

import (
	"errors"
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// pipelineWorkers is the pool size the experiment (and the CI benchmark)
// measures; it matches the -pipeline-workers 4 acceptance configuration.
const pipelineWorkers = 4

// firstMark is the translated-ticks-to-first-output proxy: the tick of the
// run's first MARK syscall (every GUI app emits one when its first window
// is up), or the whole run when the program never marks.
func firstMark(res *vm.Result) uint64 {
	if len(res.Stats.Marks) > 0 {
		return res.Stats.Marks[0].Tick
	}
	return res.Stats.Ticks
}

// pipelinedRun executes one GUI launch under the asynchronous pipeline:
// prefetch-primed from mgr, speculating successors, batching new-trace
// commits through the manager.
func pipelinedRun(app *workload.GUIApp, mgr *core.Manager) (*vm.Result, error) {
	pipe := vm.NewPipeline(pipelineWorkers, vm.PipelinePrefetch())
	defer pipe.Shutdown()
	v, err := app.Prog.NewVM(guiCfg(), app.Startup, vm.WithPipeline(pipe))
	if err != nil {
		return nil, err
	}
	pipe.SetCommit(mgr.BatchCommitter(v))
	if _, err := mgr.Prime(v); err != nil && !errors.Is(err, core.ErrNoCache) {
		return nil, err
	}
	res, err := v.Run()
	if err != nil {
		return nil, err
	}
	crep, err := mgr.Commit(v)
	if err != nil {
		return nil, err
	}
	res.Stats.Ticks += crep.Ticks
	return res, nil
}

// Pipeline measures the asynchronous translation pipeline against the
// synchronous baseline on the GUI suite. Round one (cold database) shows
// speculation hiding translation latency behind the interpreter; round two
// (warm database) shows bulk prefetch installing the whole cached trace set
// across the worker pool, pulling in the time to first output.
func Pipeline() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	syncMgr, syncCleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer syncCleanup()
	pipeMgr, pipeCleanup, err := tmpMgr()
	if err != nil {
		return nil, err
	}
	defer pipeCleanup()

	tb := stats.NewTable("sync vs pipelined (4 workers, prefetch, batched commits), cold then warm",
		"round", "application", "sync", "pipelined", "gain", "first out sync", "first out piped", "adopted", "wasted", "prefetched")

	var (
		coldSyncSum, coldPipeSum   uint64
		warmSyncSum, warmPipeSum   uint64
		warmSyncMark, warmPipeMark uint64
		adopted, wasted, enqueued  uint64
		prefetched, batchCommits   uint64
		wastedTicks                uint64
		queuePeak                  int
		warmFaster, warmMarkWins   int
	)
	for round := 1; round <= 2; round++ {
		name := "cold"
		if round == 2 {
			name = "warm"
		}
		for _, app := range gui.Apps {
			// Synchronous baseline against its own database.
			sync, err := run(runSpec{Prog: app.Prog, In: app.Startup, Cfg: guiCfg(),
				Mgr: syncMgr, Prime: primeSame, Commit: true})
			if err != nil {
				return nil, err
			}
			piped, err := pipelinedRun(app, pipeMgr)
			if err != nil {
				return nil, err
			}
			pst := &piped.Stats
			syncTicks := sync.Res.Stats.Ticks
			pipeTicks := piped.Stats.Ticks
			tb.AddRow(name, app.Name, stats.Ms(syncTicks), stats.Ms(pipeTicks),
				stats.Pct(stats.Improvement(syncTicks, pipeTicks)),
				stats.Ms(firstMark(sync.Res)), stats.Ms(firstMark(piped)),
				fmt.Sprintf("%d", pst.SpecTranslated), fmt.Sprintf("%d", pst.SpecWasted),
				fmt.Sprintf("%d", pst.PrefetchInstalls))
			adopted += pst.SpecTranslated
			wasted += pst.SpecWasted
			enqueued += pst.SpecEnqueued
			prefetched += pst.PrefetchInstalls
			batchCommits += pst.BatchCommits
			wastedTicks += pst.SpecWastedTicks
			if pst.PipelineMaxQueue > queuePeak {
				queuePeak = pst.PipelineMaxQueue
			}
			switch round {
			case 1:
				coldSyncSum += syncTicks
				coldPipeSum += pipeTicks
			case 2:
				warmSyncSum += syncTicks
				warmPipeSum += pipeTicks
				warmSyncMark += firstMark(sync.Res)
				warmPipeMark += firstMark(piped)
				if pipeTicks <= syncTicks {
					warmFaster++
				}
				if firstMark(piped) < firstMark(sync.Res) {
					warmMarkWins++
				}
			}
		}
	}

	rep := &Report{ID: "pipeline", Title: "Asynchronous translation pipeline (speculate + prefetch + batched commits)", Body: tb.Render()}
	rep.AddMetric("warm_sync_first_mark_ticks", float64(warmSyncMark))
	rep.AddMetric("warm_pipelined_first_mark_ticks", float64(warmPipeMark))
	rep.AddMetric("warm_sync_total_ticks", float64(warmSyncSum))
	rep.AddMetric("warm_pipelined_total_ticks", float64(warmPipeSum))
	rep.AddMetric("cold_pipelined_total_ticks", float64(coldPipeSum))
	rep.AddMetric("spec_wasted_ticks", float64(wastedTicks))
	rep.AddMetric("spec_enqueued", float64(enqueued))
	rep.AddMetric("spec_adopted", float64(adopted))
	rep.AddMetric("spec_wasted", float64(wasted))
	rep.AddMetric("prefetch_installs", float64(prefetched))
	rep.AddMetric("batch_commits", float64(batchCommits))
	rep.AddMetric("queue_depth_peak", float64(queuePeak))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("cold round: pipelined %s vs sync (speculation hides translation latency)",
			stats.Pct(stats.Improvement(coldSyncSum, coldPipeSum))),
		fmt.Sprintf("warm round: pipelined %s vs sync; time-to-first-output %s faster (%d/%d apps)",
			stats.Pct(stats.Improvement(warmSyncSum, warmPipeSum)),
			stats.Pct(stats.Improvement(warmSyncMark, warmPipeMark)),
			warmMarkWins, len(gui.Apps)),
		fmt.Sprintf("speculation: %d enqueued, %d adopted, %d wasted; %d prefetch installs, %d batched commits",
			enqueued, adopted, wasted, prefetched, batchCommits))
	if warmPipeMark >= warmSyncMark {
		rep.Notes = append(rep.Notes, "WARNING: warm pipelined first output was not faster than synchronous")
	}
	if warmFaster != len(gui.Apps) {
		rep.Notes = append(rep.Notes, fmt.Sprintf("WARNING: only %d/%d warm pipelined runs were at least as fast as sync", warmFaster, len(gui.Apps)))
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "pipeline", Title: "Asynchronous translation pipeline with persistent-cache prefetch", Run: Pipeline,
	})
}
