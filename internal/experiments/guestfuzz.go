package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"persistcc/internal/guestfuzz"
	"persistcc/internal/replay"
	"persistcc/internal/stats"
)

// Fixed fuzzing budget for the CI smoke: with a deterministic seed the whole
// campaign — corpus growth, coverage frontier, findings — replays bit for
// bit, so these numbers are a contract, not a tuning knob. The budget is the
// one TestFuzzRediscoversPlants proves sufficient.
const (
	guestfuzzSeed  = 1
	guestfuzzExecs = 12
	// guestfuzzMaxBody is the auto-minimization gate: every packaged
	// finding must shrink to at most this many generated guest
	// instructions.
	guestfuzzMaxBody = 12
)

// GuestFuzz is the coverage-guided fuzzing smoke: for each known-bug plant
// (a miscompiled translation, a checksum-valid corrupted store blob, a
// truncated recording) it runs a short fixed-seed campaign with only the
// oracle guarding that layer enabled, and gates that the fuzzer (a)
// rediscovers every plant within the budget, (b) auto-minimizes each finding
// under the body-instruction budget, and (c) packages it as a replay.Crasher
// that loads back from disk carrying both the spec and the
// interpreted-reference expectation. A healthy-system control campaign with
// no plant must report zero findings — oracles that fire spuriously would
// drown real bugs.
func GuestFuzz() (*Report, error) {
	work, err := os.MkdirTemp("", "pcc-guestfuzz-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)

	tb := stats.NewTable("known-bug rediscovery (fixed seed, per-plant campaigns)",
		"plant", "oracle", "execs", "kept", "cov keys", "findings", "min body", "crasher loads")

	plants := guestfuzz.Plants()
	rep := &Report{ID: "guestfuzz", Title: "Coverage-guided guest fuzzing: planted bugs rediscovered, minimized and packaged"}

	var totExecs, totFindings int
	rediscovered := 0
	for _, p := range plants {
		dir, err := os.MkdirTemp(work, p.Name+"-*")
		if err != nil {
			return nil, err
		}
		st, err := guestfuzz.Fuzz(guestfuzz.Config{
			Seed:       guestfuzzSeed,
			MaxExecs:   guestfuzzExecs,
			Oracles:    []string{p.Oracle},
			Hooks:      p.Hooks,
			CrasherDir: dir,
		})
		if err != nil {
			return nil, fmt.Errorf("guestfuzz: campaign %s: %w", p.Name, err)
		}
		totExecs += st.Execs
		totFindings += len(st.Findings)

		found, minBody, loads := false, 0, "n/a"
		for _, f := range st.Findings {
			if f.Oracle != p.Oracle {
				return rep, fmt.Errorf("guestfuzz: plant %s produced a %s finding; only %s was enabled",
					p.Name, f.Oracle, p.Oracle)
			}
			if !found || f.BodySize < minBody {
				minBody = f.BodySize
			}
			found = true
			c, _, err := replay.LoadCrasher(nil, f.Path)
			if err != nil {
				return rep, fmt.Errorf("guestfuzz: packaged crasher %s does not load: %w", f.Path, err)
			}
			var specProbe json.RawMessage
			if specProbe = c.Spec; len(specProbe) == 0 {
				return rep, fmt.Errorf("guestfuzz: crasher %s carries no program spec", f.Name)
			}
			if c.Expect == nil {
				return rep, fmt.Errorf("guestfuzz: crasher %s carries no interpreted-reference expectation", f.Name)
			}
			loads = "yes"
		}
		tb.AddRow(p.Name, p.Oracle, fmt.Sprint(st.Execs), fmt.Sprint(st.Kept),
			fmt.Sprint(st.CovKeys), fmt.Sprint(len(st.Findings)), fmt.Sprint(minBody), loads)

		if !found {
			return rep, fmt.Errorf("guestfuzz: plant %s not rediscovered within %d execs", p.Name, guestfuzzExecs)
		}
		if minBody > guestfuzzMaxBody {
			return rep, fmt.Errorf("guestfuzz: plant %s minimized to %d body insts, want <= %d",
				p.Name, minBody, guestfuzzMaxBody)
		}
		rediscovered++
	}

	// Control: the same budget on the healthy system must stay silent.
	ctrlDir, err := os.MkdirTemp(work, "control-*")
	if err != nil {
		return nil, err
	}
	ctrl, err := guestfuzz.Fuzz(guestfuzz.Config{
		Seed:       guestfuzzSeed,
		MaxExecs:   guestfuzzExecs,
		CrasherDir: ctrlDir,
	})
	if err != nil {
		return nil, fmt.Errorf("guestfuzz: control campaign: %w", err)
	}
	tb.AddRow("(none)", "all", fmt.Sprint(ctrl.Execs), fmt.Sprint(ctrl.Kept),
		fmt.Sprint(ctrl.CovKeys), fmt.Sprint(len(ctrl.Findings)), "-", "-")

	rep.Body = tb.Render()
	rep.AddMetric("plants", float64(len(plants)))
	rep.AddMetric("plants_rediscovered", float64(rediscovered))
	rep.AddMetric("total_execs", float64(totExecs))
	rep.AddMetric("total_findings", float64(totFindings))
	rep.AddMetric("control_findings", float64(len(ctrl.Findings)))
	rep.AddMetric("control_cov_keys", float64(ctrl.CovKeys))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("all %d planted known-bugs rediscovered under seed %d within %d execs each, minimized to <= %d generated instructions and packaged as loadable crashers",
			rediscovered, guestfuzzSeed, guestfuzzExecs, guestfuzzMaxBody),
		fmt.Sprintf("healthy-system control: %d findings across %d execs (gate: exactly 0)", len(ctrl.Findings), ctrl.Execs))

	if len(ctrl.Findings) != 0 {
		return rep, fmt.Errorf("guestfuzz: %d spurious findings on the healthy system", len(ctrl.Findings))
	}
	if rediscovered < 2 {
		return rep, fmt.Errorf("guestfuzz: only %d/%d plants rediscovered, want >= 2", rediscovered, len(plants))
	}
	return rep, nil
}

func init() {
	Registry = append(Registry, Entry{
		ID: "guestfuzz", Title: "Coverage-guided guest fuzzing: planted bugs rediscovered, minimized and packaged", Run: GuestFuzz,
	})
}
