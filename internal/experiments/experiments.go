// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 and §4) on the synthetic workloads from internal/workload,
// using the persistent cache manager from internal/core. Each experiment
// returns a Report with the paper-style rows plus paper-vs-measured notes;
// cmd/pcc-bench and the repository's bench_test.go drive them.
package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"persistcc/internal/core"
	"persistcc/internal/loader"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Body  string   // rendered rows/series
	Notes []string // paper-vs-measured commentary

	// Metrics holds the experiment's headline numbers keyed by a stable
	// name. Virtual ticks are deterministic, so keys ending in "_ticks"
	// are exact across runs and machines — pcc-benchdiff gates CI on them
	// (lower is better); other keys are informational.
	Metrics map[string]float64
}

// AddMetric records one named result value.
func (r *Report) AddMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n%s", r.ID, r.Title, r.Body)
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Runner produces one report.
type Runner func() (*Report, error)

// Entry registers an experiment.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists every experiment in paper order.
var Registry = []Entry{
	{"fig2a", "SPEC2K behaviour under the VM: translation-request timelines", Fig2a},
	{"fig2b", "GUI startup overhead breakdown", Fig2b},
	{"table1", "GUI applications: % library code at startup", Table1},
	{"table2", "Common libraries between GUI applications", Table2},
	{"fig4", "Code invariance: average inter-execution coverage", Fig4},
	{"fig5a", "Same-input persistence improvement", Fig5a},
	{"fig5b", "SPEC2K ref overheads with and without instrumentation", Fig5b},
	{"table3a", "176.gcc code coverage between inputs", Table3a},
	{"table3b", "Oracle code coverage between phases", Table3b},
	{"fig6a", "176.gcc cross-input persistence", Fig6a},
	{"fig6b", "Oracle cross-input persistence", Fig6b},
	{"fig7a", "176.gcc persistent cache accumulation", Fig7a},
	{"fig7b", "Oracle persistent cache accumulation", Fig7b},
	{"table4", "Library code coverage between GUI applications", Table4},
	{"fig8", "Inter-application persistence", Fig8},
	{"fig9", "Persistent code cache sizes", Fig9},
	{"oracle", "Oracle regression testing (§4.2 headline numbers)", OracleRegression},
	{"pretranslate", "Static pre-translation vs persistent caching (§5)", PreTranslate},
	{"ablation-tracelen", "Ablation: trace-length limit sweep", AblationTraceLen},
	{"ablation-reloc", "Ablation: relocatable translations under relocation", AblationRelocatable},
	{"ablation-flush", "Ablation: code-cache size limit and flushing", AblationFlush},
}

// ByID finds an experiment runner.
func ByID(id string) (Entry, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// ---------------------------------------------------------------------------
// Shared suite construction (built once per process; builds are deterministic)
// ---------------------------------------------------------------------------

var (
	specOnce  sync.Once
	specVal   []*workload.SpecBenchmark
	specErr   error
	guiOnce   sync.Once
	guiVal    *workload.GUISuite
	guiErr    error
	oraOnce   sync.Once
	oraVal    *workload.OracleSuite
	oraErr    error
	gccCached *workload.SpecBenchmark
)

func specSuite() ([]*workload.SpecBenchmark, error) {
	specOnce.Do(func() { specVal, specErr = workload.BuildSpecSuite() })
	return specVal, specErr
}

func gccBench() (*workload.SpecBenchmark, error) {
	suite, err := specSuite()
	if err != nil {
		return nil, err
	}
	if gccCached == nil {
		for _, b := range suite {
			if b.Name == "176.gcc" {
				gccCached = b
			}
		}
	}
	if gccCached == nil {
		return nil, errors.New("experiments: gcc missing from suite")
	}
	return gccCached, nil
}

func guiSuite() (*workload.GUISuite, error) {
	guiOnce.Do(func() { guiVal, guiErr = workload.BuildGUISuite() })
	return guiVal, guiErr
}

func oracleSuite() (*workload.OracleSuite, error) {
	oraOnce.Do(func() { oraVal, oraErr = workload.BuildOracleSuite() })
	return oraVal, oraErr
}

// guiCfg is the loader configuration for GUI experiments: hashed placement
// maps shared libraries at stable addresses across applications, the
// precondition for inter-application reuse.
func guiCfg() loader.Config {
	return loader.Config{Placement: loader.PlaceHashed}
}

// ---------------------------------------------------------------------------
// Run helper
// ---------------------------------------------------------------------------

type primeMode int

const (
	primeNone primeMode = iota
	primeSame
	primeInter
	primeFrom
)

// runSpec describes one measured execution.
type runSpec struct {
	Prog     *workload.Program
	In       workload.Input
	Cfg      loader.Config
	Tool     vm.Tool
	Mgr      *core.Manager
	Prime    primeMode
	FromFile *core.CacheFile // for primeFrom
	Commit   bool
	Native   bool
	Options  []vm.Option
}

// runOut carries the execution result plus persistence reports.
type runOut struct {
	Res    *vm.Result
	Prime  *core.PrimeReport
	Commit *core.CommitReport
	VM     *vm.VM
}

func run(s runSpec) (*runOut, error) {
	if s.Tool != nil {
		s.Options = append(s.Options, vm.WithTool(s.Tool))
	}
	v, err := s.Prog.NewVM(s.Cfg, s.In, s.Options...)
	if err != nil {
		return nil, err
	}
	out := &runOut{VM: v}
	switch s.Prime {
	case primeNone:
	case primeSame:
		rep, err := s.Mgr.Prime(v)
		if err != nil && !errors.Is(err, core.ErrNoCache) {
			return nil, err
		}
		out.Prime = rep
	case primeInter:
		rep, err := s.Mgr.PrimeInterApp(v)
		if err != nil && !errors.Is(err, core.ErrNoCache) {
			return nil, err
		}
		out.Prime = rep
	case primeFrom:
		rep, err := s.Mgr.PrimeFrom(v, s.FromFile)
		if err != nil {
			return nil, err
		}
		out.Prime = rep
	}
	if s.Native {
		out.Res, err = v.RunNative()
	} else {
		out.Res, err = v.Run()
	}
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", s.Prog.Name, s.In.Name, err)
	}
	if s.Commit {
		crep, err := s.Mgr.Commit(v)
		if err != nil {
			return nil, err
		}
		out.Commit = crep
		// The save cost belongs to the run that generated the cache.
		out.Res.Stats.PersistTicks += crep.Ticks
		out.Res.Stats.Ticks += crep.Ticks
	}
	return out, nil
}

// tmpMgr creates a persistence manager in a fresh temp directory; the
// caller must call the returned cleanup.
func tmpMgr(opts ...core.ManagerOption) (*core.Manager, func(), error) {
	dir, err := os.MkdirTemp("", "pcc-exp-*")
	if err != nil {
		return nil, nil, err
	}
	mgr, err := core.NewManager(dir, opts...)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return mgr, func() {
		// Recovery paths may leave permission-stripped quarantine files;
		// reopen modes so the tree never outlives the experiment.
		_ = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err == nil {
				_ = os.Chmod(p, 0o755)
			}
			return nil
		})
		os.RemoveAll(dir)
	}, nil
}

// withTool wraps a tool option list.
func withTool(t vm.Tool) []vm.Option {
	if t == nil {
		return nil
	}
	return []vm.Option{vm.WithTool(t)}
}

// All runs every experiment in order, stopping at the first failure.
func All() ([]*Report, error) {
	var out []*Report
	for _, e := range Registry {
		r, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
