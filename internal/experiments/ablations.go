package experiments

import (
	"fmt"

	"persistcc/internal/core"
	"persistcc/internal/loader"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
)

// AblationTraceLen sweeps the trace instruction-count limit on gcc: longer
// traces amortize per-trace translation overhead and shrink the data pool
// (fewer translation-map entries and link records), at the cost of more
// duplicated tail code when side exits are taken.
func AblationTraceLen() (*Report, error) {
	gcc, err := gccBench()
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("176.gcc, Input 1", "max trace insts", "traces", "VM overhead", "total time", "cache code", "cache data")
	var t4, t64 uint64
	for _, limit := range []int{4, 8, 16, 32, 64} {
		out, err := run(runSpec{Prog: gcc.Prog, In: gcc.Ref[0],
			Options: []vm.Option{vm.WithMaxTrace(limit)}})
		if err != nil {
			return nil, err
		}
		st := &out.Res.Stats
		cc := out.VM.Cache()
		tb.AddRow(fmt.Sprintf("%d", limit),
			fmt.Sprintf("%d", st.TracesTranslated),
			stats.Ms(st.TransTicks), stats.Ms(st.Ticks),
			stats.Bytes(cc.CodeBytes()), stats.Bytes(cc.DataBytes()))
		if limit == 4 {
			t4 = st.Ticks
		}
		if limit == 64 {
			t64 = st.Ticks
		}
	}
	rep := &Report{ID: "ablation-tracelen", Title: "Trace-length limit sweep", Body: tb.Render()}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"longer traces cut per-trace overheads: 64-inst traces run %s faster than 4-inst traces",
		stats.Pct(stats.Improvement(t4, t64))))
	return rep, nil
}

// AblationRelocatable isolates the paper's stated limitation — "traces
// corresponding to identical libraries loaded at different addresses across
// programs cannot be used because the system does not generate relocatable
// translated code. Instead, the system falls back to retranslation" — by
// giving each application its own ASLR seed so that no library address
// matches across the two apps. Without the extension, every cached trace is
// invalidated (and the useless cache costs a little to probe); with it,
// rebasing recovers the full inter-application benefit.
func AblationRelocatable() (*Report, error) {
	gui, err := guiSuite()
	if err != nil {
		return nil, err
	}
	src, dst := gui.Apps[0], gui.Apps[4] // gftp's cache used by gqview
	// Per-app ASLR: every shared library maps at a different base in the
	// two applications, so no persisted library translation survives the
	// paper's base-address key check.
	srcCfg := loader.Config{Placement: loader.PlaceASLR, ASLRSeed: 101}
	dstCfg := loader.Config{Placement: loader.PlaceASLR, ASLRSeed: 202}

	measure := func(relocatable bool) (imp float64, reused, rebased, invalid int, err error) {
		var opts []core.ManagerOption
		if relocatable {
			opts = append(opts, core.WithRelocatable())
		}
		mgr, cleanup, err := tmpMgr(opts...)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer cleanup()
		if _, err := run(runSpec{Prog: src.Prog, In: src.Startup, Cfg: srcCfg, Mgr: mgr, Commit: true}); err != nil {
			return 0, 0, 0, 0, err
		}
		base, err := run(runSpec{Prog: dst.Prog, In: dst.Startup, Cfg: dstCfg})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		p, err := run(runSpec{Prog: dst.Prog, In: dst.Startup, Cfg: dstCfg, Mgr: mgr, Prime: primeInter})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if p.Res.ExitCode != base.Res.ExitCode {
			return 0, 0, 0, 0, fmt.Errorf("relocatable=%v: run diverged", relocatable)
		}
		return stats.Improvement(base.Res.Stats.Ticks, p.Res.Stats.Ticks),
			p.Prime.Installed, p.Prime.Rebased, p.Prime.Invalidated(), nil
	}

	impOff, reOff, rbOff, invOff, err := measure(false)
	if err != nil {
		return nil, err
	}
	impOn, reOn, rbOn, invOn, err := measure(true)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("gqview startup using gftp's cache, libraries at app-specific bases",
		"relocatable translations", "improvement", "traces reused", "rebased", "invalidated")
	tb.AddRow("off (paper's system)", stats.Pct(impOff), fmt.Sprintf("%d", reOff), fmt.Sprintf("%d", rbOff), fmt.Sprintf("%d", invOff))
	tb.AddRow("on (extension)", stats.Pct(impOn), fmt.Sprintf("%d", reOn), fmt.Sprintf("%d", rbOn), fmt.Sprintf("%d", invOn))
	rep := &Report{ID: "ablation-reloc", Title: "Relocatable translations under library relocation", Body: tb.Render()}
	rep.Notes = append(rep.Notes,
		"the paper: translations of identical libraries at different addresses cannot be reused; generating position-independent translations is the suggested fix",
		fmt.Sprintf("measured: the extension turns a %s improvement into %s by rebasing instead of invalidating", stats.Pct(impOff), stats.Pct(impOn)))
	if impOn <= impOff {
		rep.Notes = append(rep.Notes, "WARNING: relocatable translations provided no additional benefit")
	}
	return rep, nil
}

// AblationFlush constrains the code-cache budget until it flushes. A flush
// discards all translated code and data structures, so constrained caches
// re-translate hot code; the paper notes none of its experiments flushed
// under the 512MB reservation.
func AblationFlush() (*Report, error) {
	gcc, err := gccBench()
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("176.gcc, Input 1", "cache limit", "flushes", "traces translated", "VM overhead", "total time")
	var unboundedTicks uint64
	warn := ""
	for _, limit := range []uint64{vm.DefaultCacheLimit, 1 << 20, 256 << 10, 128 << 10} {
		out, err := run(runSpec{Prog: gcc.Prog, In: gcc.Ref[0],
			Options: []vm.Option{vm.WithCacheLimit(limit)}})
		if err != nil {
			return nil, err
		}
		st := &out.Res.Stats
		name := stats.Bytes(limit)
		if limit == vm.DefaultCacheLimit {
			name = "unbounded (default)"
			unboundedTicks = st.Ticks
		}
		tb.AddRow(name, fmt.Sprintf("%d", st.Flushes), fmt.Sprintf("%d", st.TracesTranslated),
			stats.Ms(st.TransTicks), stats.Ms(st.Ticks))
		if limit == 128<<10 && st.Flushes == 0 {
			warn = "WARNING: 128KiB cache did not flush"
		}
		if limit == 128<<10 && st.Ticks <= unboundedTicks {
			warn = "WARNING: flushing did not cost time"
		}
	}
	rep := &Report{ID: "ablation-flush", Title: "Code-cache size limit and flushing", Body: tb.Render()}
	rep.Notes = append(rep.Notes, "the paper reserves 512MB split evenly between code and data pools and never flushes; constraining the budget forces re-translation of flushed code")
	if warn != "" {
		rep.Notes = append(rep.Notes, warn)
	}
	return rep, nil
}
