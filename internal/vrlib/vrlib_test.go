package vrlib_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"persistcc/internal/asm"
	"persistcc/internal/link"
	"persistcc/internal/loader"
	"persistcc/internal/obj"
	"persistcc/internal/vm"
	"persistcc/internal/vrlib"
)

// harness builds an executable from src linked against libvr.so, runs it
// (both natively and under the VM, asserting agreement) and returns the
// cached-mode result.
func harness(t *testing.T, src string, input []uint64) *vm.Result {
	t.Helper()
	lib, err := vrlib.Build()
	if err != nil {
		t.Fatal(err)
	}
	o, err := asm.Assemble("t.o", src)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := link.Link(link.Input{Name: "t", Kind: obj.KindExec, Objects: []*obj.File{o}, Libs: []*obj.File{lib}})
	if err != nil {
		t.Fatal(err)
	}
	load := func() *vm.VM {
		p, err := loader.Load(exe, loader.Config{Resolve: func(name string) (*obj.File, int64, error) {
			if name == vrlib.Name {
				return lib, 1, nil
			}
			return nil, 0, fmt.Errorf("no %s", name)
		}})
		if err != nil {
			t.Fatal(err)
		}
		return vm.New(p, vm.WithInput(input))
	}
	nat, err := load().RunNative()
	if err != nil {
		t.Fatal(err)
	}
	res, err := load().Run()
	if err != nil {
		t.Fatal(err)
	}
	if nat.ExitCode != res.ExitCode || !bytes.Equal(nat.Output, res.Output) {
		t.Fatalf("native/cached divergence: exit %d/%d output %q/%q",
			nat.ExitCode, res.ExitCode, nat.Output, res.Output)
	}
	return res
}

func TestPutsAndPrintU64(t *testing.T) {
	res := harness(t, `
.text
.global _start
_start:
	la   a0, greeting
	call puts
	movi a0, 0
	call print_u64
	li   a0, 1234567890123
	call print_u64
	movi a0, 1
	movi a1, 0
	sys
	halt
.data
greeting: .asciz "hi there\n"
`, nil)
	want := "hi there\n0\n1234567890123\n"
	if string(res.Output) != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestMemRoutines(t *testing.T) {
	res := harness(t, `
.text
.global _start
_start:
	; memset heap[0..16) = '.'; memcpy "abcdef" over the front; print
	movi a0, 0x20000000
	movi a1, '.'
	movi a2, 16
	call memset
	movi a0, 0x20000000
	la   a1, src
	movi a2, 6
	call memcpy
	movi t0, 0x20000000
	movi t1, 0
	sb   t1, 16(t0)      ; terminate
	mv   a0, t0
	call puts
	; strlen of the result -> exit code
	movi a0, 0x20000000
	call strlen
	mv   a1, a0
	movi a0, 1
	sys
	halt
.data
src: .ascii "abcdef"
`, nil)
	if string(res.Output) != "abcdef.........." {
		t.Errorf("output %q", res.Output)
	}
	if res.ExitCode != 16 {
		t.Errorf("strlen = %d, want 16", res.ExitCode)
	}
}

func TestStrcmp(t *testing.T) {
	res := harness(t, `
.text
.global _start
_start:
	la   a0, s1
	la   a1, s2
	call strcmp          ; "apple" vs "apply" -> -1
	mv   s0, a0
	la   a0, s2
	la   a1, s1
	call strcmp          ; 1
	mv   s1, a0
	la   a0, s1
	la   a1, s3
	call strcmp          ; 0
	mv   s2, a0
	; pack results: (s0+1)*100 + (s1+1)*10 + (s2+1) = 0*100+2*10+1 = 21
	addi t0, s0, 1
	muli t0, t0, 100
	addi t1, s1, 1
	muli t1, t1, 10
	add  t0, t0, t1
	addi t1, s2, 1
	add  a1, t0, t1
	movi a0, 1
	sys
	halt
.data
s1: .asciz "apple"
s2: .asciz "apply"
s3: .asciz "apple"
`, nil)
	if res.ExitCode != 21 {
		t.Errorf("strcmp pack = %d, want 21", res.ExitCode)
	}
}

// sortProg copies n input words onto the heap, sorts them, writes the raw
// sorted array to fd 1 and exits with the result of bsearch for input[n+1].
const sortProg = `
.text
.global _start
_start:
	movi t1, 0x08000000
	ld   s0, 0(t1)       ; n
	movi s2, 0x20000000  ; heap array
	movi t2, 0           ; i
cp:
	bgeu t2, s0, cpdone
	slli t3, t2, 3
	addi t4, t3, 8       ; input word i+1
	add  t4, t1, t4
	ld   t5, 0(t4)
	add  t6, s2, t3
	sd   t5, 0(t6)
	addi t2, t2, 1
	j    cp
cpdone:
	mv   a0, s2
	mv   a1, s0
	call sort_u64
	; write the sorted words
	movi a0, 2
	movi a1, 1
	mv   a2, s2
	slli a3, s0, 3
	sys
	; bsearch for input[n+1]
	movi t1, 0x08000000
	addi t2, s0, 1
	slli t2, t2, 3
	add  t2, t1, t2
	ld   a2, 0(t2)
	mv   a0, s2
	mv   a1, s0
	call bsearch_u64
	mv   a1, a0
	movi a0, 1
	sys
	halt
`

func TestSortAndBsearchProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(120)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(r.Intn(1000)) // duplicates likely
		}
		// Search key: half the time present, half absent.
		var key uint64
		if r.Intn(2) == 0 {
			key = vals[r.Intn(n)]
		} else {
			key = 5000 + uint64(r.Intn(1000))
		}
		input := append([]uint64{uint64(n)}, vals...)
		input = append(input, key)

		res := harness(t, sortProg, input)
		if len(res.Output) != 8*n {
			t.Fatalf("trial %d: output %d bytes, want %d", trial, len(res.Output), 8*n)
		}
		got := make([]uint64, n)
		for i := range got {
			got[i] = binary.LittleEndian.Uint64(res.Output[8*i:])
		}
		want := append([]uint64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sorted[%d] = %d, want %d (in %v)", trial, i, got[i], want[i], vals)
			}
		}
		// bsearch contract: an index holding the key, or n when absent.
		idx := res.ExitCode & 0xffff // exit codes are masked by nothing here, but stay safe
		if idx == uint64(n)&0xffff {
			for _, v := range want {
				if v == key {
					t.Fatalf("trial %d: bsearch missed present key %d", trial, key)
				}
			}
		} else if int(idx) >= n || want[idx] != key {
			t.Fatalf("trial %d: bsearch(%d) = %d, array %v", trial, key, idx, want)
		}
	}
}

func TestXorshiftMatchesGo(t *testing.T) {
	res := harness(t, `
.text
.global _start
_start:
	li   a0, 88172645463325252
	movi s0, 5
xs:
	call xorshift64
	addi s0, s0, -1
	bnez s0, xs
	mv   a1, a0
	andi a1, a1, 0xffff
	movi a0, 1
	sys
	halt
`, nil)
	x := uint64(88172645463325252)
	for i := 0; i < 5; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if res.ExitCode != x&0xffff {
		t.Errorf("xorshift = %#x, want %#x", res.ExitCode, x&0xffff)
	}
}

func TestLibraryAssembles(t *testing.T) {
	lib, err := vrlib.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"memset", "memcpy", "strlen", "strcmp", "utoa",
		"puts", "print_u64", "xorshift64", "sort_u64", "bsearch_u64"} {
		if _, ok := lib.ExportAddr(sym); !ok {
			t.Errorf("libvr.so does not export %s", sym)
		}
	}
	if !strings.Contains(vrlib.Source, ".global") {
		t.Error("source sanity check failed")
	}
}
