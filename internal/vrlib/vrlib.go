// Package vrlib ships libvr.so, a small runtime library for VR64 guest
// programs written in this repository's assembly language: memory and
// string routines, decimal formatting, console output, a PRNG and an
// in-place sort. Examples and tests link against it the way the paper's
// GUI applications link against glib — it is ordinary file-backed library
// code whose translations persist and are shared across applications.
package vrlib

import (
	"fmt"

	"persistcc/internal/asm"
	"persistcc/internal/link"
	"persistcc/internal/obj"
)

// Name is the library's module name.
const Name = "libvr.so"

// Source is the complete assembly source of libvr.so.
//
// Calling convention: arguments in a0..a5, result in a0; t0..t9 are
// caller-saved scratch; s registers are preserved (the library never
// touches them).
const Source = `
; libvr.so — VR64 runtime support routines.
.text

; memset(dst, c, n) -> dst
.global memset
memset:
	mv   t0, a0
vr_ms_loop:
	beqz a2, vr_ms_done
	sb   a1, 0(t0)
	addi t0, t0, 1
	addi a2, a2, -1
	j    vr_ms_loop
vr_ms_done:
	ret

; memcpy(dst, src, n) -> dst (regions must not overlap)
.global memcpy
memcpy:
	mv   t0, a0
	mv   t1, a1
vr_mc_loop:
	beqz a2, vr_mc_done
	lbu  t2, 0(t1)
	sb   t2, 0(t0)
	addi t0, t0, 1
	addi t1, t1, 1
	addi a2, a2, -1
	j    vr_mc_loop
vr_mc_done:
	ret

; strlen(s) -> length
.global strlen
strlen:
	mv   t0, a0
	movi a0, 0
vr_sl_loop:
	lbu  t1, 0(t0)
	beqz t1, vr_sl_done
	addi t0, t0, 1
	addi a0, a0, 1
	j    vr_sl_loop
vr_sl_done:
	ret

; strcmp(a, b) -> -1 / 0 / 1 (unsigned byte order)
.global strcmp
strcmp:
vr_sc_loop:
	lbu  t0, 0(a0)
	lbu  t1, 0(a1)
	bne  t0, t1, vr_sc_diff
	beqz t0, vr_sc_eq
	addi a0, a0, 1
	addi a1, a1, 1
	j    vr_sc_loop
vr_sc_diff:
	bltu t0, t1, vr_sc_lt
	movi a0, 1
	ret
vr_sc_lt:
	movi a0, -1
	ret
vr_sc_eq:
	movi a0, 0
	ret

; utoa(value, buf) -> length; writes decimal digits (no terminator)
.global utoa
utoa:
	mv   t0, a0          ; remaining value
	mv   t1, a1          ; buffer
	movi t2, 0           ; length
	movi t3, 10
vr_ua_loop:
	remu t4, t0, t3
	addi t4, t4, '0'
	add  t5, t1, t2
	sb   t4, 0(t5)
	addi t2, t2, 1
	divu t0, t0, t3
	bnez t0, vr_ua_loop
	; reverse buf[0..length)
	movi t3, 0           ; i
	addi t4, t2, -1      ; j
vr_ua_rev:
	bge  t3, t4, vr_ua_done
	add  t5, t1, t3
	add  t6, t1, t4
	lbu  t7, 0(t5)
	lbu  t8, 0(t6)
	sb   t8, 0(t5)
	sb   t7, 0(t6)
	addi t3, t3, 1
	addi t4, t4, -1
	j    vr_ua_rev
vr_ua_done:
	mv   a0, t2
	ret

; puts(s): write the NUL-terminated string to fd 1 -> bytes written
.global puts
puts:
	addi sp, sp, -16
	sd   ra, 0(sp)
	sd   a0, 8(sp)
	call strlen
	mv   a3, a0          ; len
	ld   a2, 8(sp)       ; addr
	movi a0, 2           ; sys write
	movi a1, 1
	sys
	ld   ra, 0(sp)
	addi sp, sp, 16
	ret

; print_u64(v): write v in decimal plus a newline to fd 1
.global print_u64
print_u64:
	addi sp, sp, -48
	sd   ra, 0(sp)
	addi a1, sp, 8
	call utoa            ; digits at sp+8, a0 = len
	mv   a3, a0
	addi t0, sp, 8
	add  t0, t0, a3
	movi t1, '\n'
	sb   t1, 0(t0)
	addi a3, a3, 1
	addi a2, sp, 8
	movi a0, 2           ; sys write
	movi a1, 1
	sys
	ld   ra, 0(sp)
	addi sp, sp, 48
	ret

; xorshift64(x) -> next state (x must be nonzero)
.global xorshift64
xorshift64:
	slli t0, a0, 13
	xor  a0, a0, t0
	srli t0, a0, 7
	xor  a0, a0, t0
	slli t0, a0, 17
	xor  a0, a0, t0
	ret

; sort_u64(base, n): in-place unsigned insertion sort of 64-bit words
.global sort_u64
sort_u64:
	movi t0, 1           ; i
vr_so_outer:
	bgeu t0, a1, vr_so_done
	slli t1, t0, 3
	add  t1, a0, t1
	ld   t2, 0(t1)       ; key
	mv   t3, t0          ; j
vr_so_inner:
	beqz t3, vr_so_insert
	addi t4, t3, -1
	slli t5, t4, 3
	add  t5, a0, t5
	ld   t6, 0(t5)
	bleu t6, t2, vr_so_insert
	slli t7, t3, 3
	add  t7, a0, t7
	sd   t6, 0(t7)       ; shift right
	mv   t3, t4
	j    vr_so_inner
vr_so_insert:
	slli t7, t3, 3
	add  t7, a0, t7
	sd   t2, 0(t7)
	addi t0, t0, 1
	j    vr_so_outer
vr_so_done:
	ret

; bsearch_u64(base, n, key) -> index of key, or n if absent (array sorted)
.global bsearch_u64
bsearch_u64:
	movi t0, 0           ; lo
	mv   t1, a1          ; hi
vr_bs_loop:
	bgeu t0, t1, vr_bs_miss
	add  t2, t0, t1
	srli t2, t2, 1       ; mid
	slli t3, t2, 3
	add  t3, a0, t3
	ld   t4, 0(t3)
	beq  t4, a2, vr_bs_hit
	bltu t4, a2, vr_bs_right
	mv   t1, t2
	j    vr_bs_loop
vr_bs_right:
	addi t0, t2, 1
	j    vr_bs_loop
vr_bs_hit:
	mv   a0, t2
	ret
vr_bs_miss:
	mv   a0, a1
	ret
`

// Build assembles and links libvr.so.
func Build() (*obj.File, error) {
	o, err := asm.Assemble("libvr.o", Source)
	if err != nil {
		return nil, fmt.Errorf("vrlib: %w", err)
	}
	lib, err := link.Link(link.Input{Name: Name, Kind: obj.KindLib, Objects: []*obj.File{o}})
	if err != nil {
		return nil, fmt.Errorf("vrlib: %w", err)
	}
	return lib, nil
}
