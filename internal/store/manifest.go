package store

import (
	"crypto/sha256"
	"fmt"

	"persistcc/internal/binenc"
)

// manifestMagic identifies encoded manifests.
var manifestMagic = [4]byte{'P', 'C', 'M', '1'}

// manifestVersion is bumped on incompatible encoding changes. Version 2
// added the per-trace optimization level; version-1 manifests (all traces
// unoptimized) are still decoded.
const manifestVersion = 2

const (
	maxManifestModules = 4096
	maxManifestTraces  = 4 << 20
	maxManifestPathLen = 4096
)

// Module mirrors one executable mapping captured at cache-creation time —
// the same record the legacy cache-file format carries, duplicated here so
// the store does not depend on internal/core (core depends on the store).
type Module struct {
	Path    string
	Base    uint32
	Size    uint32
	MTime   int64
	Digest  [32]byte
	Key     [32]byte // base-sensitive mapping key
	Content [32]byte // base-insensitive content key
}

// TraceRef names one trace of the application: the blob holding its body
// plus the mapping from the blob's local ref slots to this manifest's
// module table. Slot i of the blob corresponds to Modules[Refs[i]].
type TraceRef struct {
	Blob     Hash
	Refs     []int32
	OptLevel uint8 // expected optimization level of the blob (0 = unoptimized)
}

// Manifest is the per-application half of the store format: keys, the
// module table, and trace references — everything the legacy cache file
// held except the trace bodies, which live in shared blobs.
type Manifest struct {
	AppKey  [32]byte
	VMKey   [32]byte
	ToolKey [32]byte
	AppPath string

	Modules []Module
	Traces  []TraceRef

	CodePool uint64
	DataPool uint64

	// EncodedBytes is the manifest's on-disk size, set (not serialized)
	// by Encode and DecodeManifest.
	EncodedBytes uint64
}

// BlobHashes returns the distinct blob hashes the manifest references, in
// first-reference order.
func (m *Manifest) BlobHashes() []Hash {
	seen := make(map[Hash]bool, len(m.Traces))
	var out []Hash
	for _, tr := range m.Traces {
		if !seen[tr.Blob] {
			seen[tr.Blob] = true
			out = append(out, tr.Blob)
		}
	}
	return out
}

// Encode serializes the manifest with a SHA-256 integrity trailer, the
// same corruption net the legacy format uses.
func (m *Manifest) Encode() []byte {
	w := &binenc.Writer{}
	w.Raw(manifestMagic[:])
	w.U32(manifestVersion)
	w.Raw(m.AppKey[:])
	w.Raw(m.VMKey[:])
	w.Raw(m.ToolKey[:])
	w.Str(m.AppPath)

	w.U32(uint32(len(m.Modules)))
	for _, mod := range m.Modules {
		w.Str(mod.Path)
		w.U32(mod.Base)
		w.U32(mod.Size)
		w.I64(mod.MTime)
		w.Raw(mod.Digest[:])
		w.Raw(mod.Key[:])
		w.Raw(mod.Content[:])
	}

	w.U32(uint32(len(m.Traces)))
	for _, tr := range m.Traces {
		w.Raw(tr.Blob[:])
		w.U32(uint32(len(tr.Refs)))
		for _, ref := range tr.Refs {
			w.U32(uint32(ref))
		}
		w.U8(tr.OptLevel)
	}
	w.U64(m.CodePool)
	w.U64(m.DataPool)

	sum := sha256.Sum256(w.Buf)
	w.Raw(sum[:])
	m.EncodedBytes = uint64(len(w.Buf))
	return w.Buf
}

// DecodeManifest decodes and verifies an encoded manifest.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < 32 {
		return nil, fmt.Errorf("store: manifest too short")
	}
	payload, trailer := b[:len(b)-32], b[len(b)-32:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("store: manifest integrity check failed")
	}
	r := &binenc.Reader{Buf: payload}
	magic := r.Raw(4)
	if r.Err == nil && string(magic) != string(manifestMagic[:]) {
		return nil, fmt.Errorf("store: bad manifest magic %q", magic)
	}
	version := r.U32()
	if r.Err == nil && (version < 1 || version > manifestVersion) {
		return nil, fmt.Errorf("store: unsupported manifest version %d", version)
	}
	m := &Manifest{}
	copy(m.AppKey[:], r.Raw(32))
	copy(m.VMKey[:], r.Raw(32))
	copy(m.ToolKey[:], r.Raw(32))
	m.AppPath = r.Str(maxManifestPathLen)

	for i, n := 0, r.Count(maxManifestModules); i < n && r.Err == nil; i++ {
		var mod Module
		mod.Path = r.Str(maxManifestPathLen)
		mod.Base = r.U32()
		mod.Size = r.U32()
		mod.MTime = r.I64()
		copy(mod.Digest[:], r.Raw(32))
		copy(mod.Key[:], r.Raw(32))
		copy(mod.Content[:], r.Raw(32))
		m.Modules = append(m.Modules, mod)
	}

	for i, n := 0, r.Count(maxManifestTraces); i < n && r.Err == nil; i++ {
		var tr TraceRef
		copy(tr.Blob[:], r.Raw(32))
		for j, nr := 0, r.Count(maxBlobRefs); j < nr && r.Err == nil; j++ {
			tr.Refs = append(tr.Refs, int32(r.U32()))
		}
		if version >= 2 {
			tr.OptLevel = r.U8()
		}
		m.Traces = append(m.Traces, tr)
	}
	m.CodePool = r.U64()
	m.DataPool = r.U64()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("store: manifest decode: %w", err)
	}
	for i, tr := range m.Traces {
		if len(tr.Refs) == 0 {
			return nil, fmt.Errorf("store: manifest trace %d has no module refs", i)
		}
		for _, ref := range tr.Refs {
			if ref < 0 || int(ref) >= len(m.Modules) {
				return nil, fmt.Errorf("store: manifest trace %d references module %d of %d", i, ref, len(m.Modules))
			}
		}
	}
	return m, nil
}

// CheckBlob verifies that a decoded blob is consistent with the manifest's
// view of it: the ref count matches and every ref slot resolves to a
// module whose content key and base equal the blob's recorded identity.
// A mismatch means the blob on disk is not the one the manifest was
// written against.
func (m *Manifest) CheckBlob(tr TraceRef, b *Blob) error {
	if len(tr.Refs) != len(b.Refs) {
		return fmt.Errorf("store: blob %s has %d refs, manifest expects %d", tr.Blob, len(b.Refs), len(tr.Refs))
	}
	for i, ref := range tr.Refs {
		mod := m.Modules[ref]
		if mod.Content != b.Refs[i].Content || mod.Base != b.Refs[i].Base {
			return fmt.Errorf("store: blob %s ref %d does not match manifest module %d (%s)", tr.Blob, i, ref, mod.Path)
		}
	}
	if b.OptLevel != tr.OptLevel {
		return fmt.Errorf("store: blob %s has optimization level %d, manifest expects %d", tr.Blob, b.OptLevel, tr.OptLevel)
	}
	return nil
}
