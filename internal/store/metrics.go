package store

import (
	"persistcc/internal/metrics"
)

// storeMetrics holds the pcc_store_* families. Store operations are
// low-frequency (commit, prime, compaction), so counters are incremented
// directly at the call sites, like the manager's.
type storeMetrics struct {
	hits         *metrics.CounterVec // tier=l1|l2|l3
	misses       *metrics.Counter
	written      *metrics.Counter
	writtenBytes *metrics.Counter
	dedupBlobs   *metrics.Counter
	dedupBytes   *metrics.Counter
	quarantined  *metrics.Counter
	compactions  *metrics.Counter
	pruned       *metrics.CounterVec // reason=cold|orphan
	prunedBytes  *metrics.Counter

	blobs      *metrics.Gauge
	blobBytes  *metrics.Gauge
	generation *metrics.Gauge
}

func newStoreMetrics(r *metrics.Registry) *storeMetrics {
	if r == nil {
		r = metrics.NewRegistry()
	}
	return &storeMetrics{
		hits:         r.CounterVec("pcc_store_blob_hits_total", "blob lookups resolved, by tier", "tier"),
		misses:       r.Counter("pcc_store_blob_misses_total", "blob lookups that found no local copy"),
		written:      r.Counter("pcc_store_blobs_written_total", "new blobs written to the content store"),
		writtenBytes: r.Counter("pcc_store_blob_written_bytes_total", "bytes written for new blobs"),
		dedupBlobs:   r.Counter("pcc_store_dedup_blobs_total", "blob writes elided because the content already existed"),
		dedupBytes:   r.Counter("pcc_store_dedup_bytes_total", "bytes NOT written thanks to content deduplication"),
		quarantined:  r.Counter("pcc_store_blob_quarantine_total", "blobs quarantined on a failed content check"),
		compactions:  r.Counter("pcc_store_compactions_total", "generational compaction runs"),
		pruned:       r.CounterVec("pcc_store_pruned_blobs_total", "blobs deleted by compaction, by reason", "reason"),
		prunedBytes:  r.Counter("pcc_store_pruned_bytes_total", "bytes reclaimed by compaction"),
		blobs:        r.Gauge("pcc_store_blobs", "addressable blobs in the local store"),
		blobBytes:    r.Gauge("pcc_store_blob_bytes", "physical bytes across addressable blobs"),
		generation:   r.Gauge("pcc_store_generation", "current (hot) generation number"),
	}
}
