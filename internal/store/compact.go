package store

import (
	"path/filepath"
	"sort"
)

// CompactReport summarizes one generational compaction run.
type CompactReport struct {
	Gen            int    // new (hot) generation after the run
	Carried        int    // live blobs moved into the new generation
	PrunedOrphans  int    // blobs no manifest references, deleted
	PrunedCold     int    // referenced blobs pruned for low utility
	ReclaimedBytes uint64 // physical bytes deleted
	ColdHashes     []Hash // pruned-cold hashes, for manifest repair
}

// Compact opens a fresh generation and rewrites the store against it:
// unreferenced blobs are deleted outright, referenced blobs whose utility
// (hit frequency × translation cost — the paper's cold-code economics) is
// at least minUtility move into the new generation, and referenced but
// cold blobs are pruned, their hashes reported so the caller can strip
// them from manifests (a pruned trace simply re-translates on next use).
// live maps every blob hash some manifest still references; minUtility <= 0
// keeps every live blob. Hit counters halve each run so utility decays.
func (s *Store) Compact(live map[Hash]bool, minUtility uint64) (*CompactReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	newGen := s.gen + 1
	if err := s.fs.MkdirAll(s.genDir(newGen), 0o755); err != nil {
		return nil, err
	}
	rep := &CompactReport{Gen: newGen}

	// Deterministic order: sorted by hash.
	hashes := make([]Hash, 0, len(s.idx))
	for h := range s.idx {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		a, b := hashes[i], hashes[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})

	oldDirs := make(map[int]bool)
	for _, h := range hashes {
		info := s.idx[h]
		oldDirs[info.Gen] = true
		src := s.blobPath(info.Gen, h)
		switch {
		case !live[h]:
			if err := s.fs.Remove(src); err == nil {
				rep.PrunedOrphans++
				rep.ReclaimedBytes += info.Size
				s.met.pruned.With("orphan").Inc()
				s.met.prunedBytes.Add(info.Size)
			}
			delete(s.idx, h)
			s.l1mu.Lock()
			delete(s.l1, h)
			s.l1mu.Unlock()
		case minUtility > 0 && info.Born < s.gen && info.Hits*translationCost(info) < minUtility:
			// Cold: born before the current generation (so it has lived
			// through at least one full window without earning its keep)
			// and too cheap to re-translate. Pruning covers the loss.
			if err := s.fs.Remove(src); err == nil {
				rep.PrunedCold++
				rep.ReclaimedBytes += info.Size
				rep.ColdHashes = append(rep.ColdHashes, h)
				s.met.pruned.With("cold").Inc()
				s.met.prunedBytes.Add(info.Size)
				delete(s.idx, h)
				s.l1mu.Lock()
				delete(s.l1, h)
				s.l1mu.Unlock()
			}
		default:
			dst := s.blobPath(newGen, h)
			if err := s.fs.Rename(src, dst); err != nil {
				// Keep the blob where it is rather than fail the run; it
				// stays addressable in its old generation.
				continue
			}
			info.Gen = newGen
			info.Hits /= 2
			s.idx[h] = info
			rep.Carried++
		}
	}
	s.gen = newGen

	// Drop emptied generation directories; a non-empty one (rename failed
	// above) is left alone and remains addressable.
	for g := range oldDirs {
		if g == newGen {
			continue
		}
		if files, err := s.fs.Glob(filepath.Join(s.genDir(g), "*")); err == nil && len(files) == 0 {
			s.fs.Remove(s.genDir(g))
		}
	}

	if err := s.flushMetaLocked(); err != nil {
		return rep, err
	}
	s.met.compactions.Inc()
	s.publishGaugesLocked()
	return rep, nil
}
