package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"persistcc/internal/isa"
	"persistcc/internal/obj"
	"persistcc/internal/store"
	"persistcc/internal/vm"
)

// mkBlob builds a distinct, decodable blob: seed varies the module content
// key (and therefore the hash), n sizes the instruction body.
func mkBlob(seed byte, n int) *store.Blob {
	ref := store.Ref{Base: 0x40000000}
	ref.Content[0] = seed
	b := &store.Blob{Refs: []store.Ref{ref}, ModOff: 0x40}
	for i := 0; i < n; i++ {
		b.Insts = append(b.Insts, isa.Inst{Op: isa.OpAddI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: int32(i + 1)})
	}
	b.Insts = append(b.Insts, isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA})
	b.Ops = append(b.Ops, vm.AnalysisOp{Pos: 0, Kind: vm.OpKindCount, Arg: 7, Cost: 1})
	b.Notes = append(b.Notes, vm.RelocNote{InstIdx: 0, Type: obj.RelPC32, Target: 0, TargetOff: 0x40})
	return b
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBlobRoundTrip(t *testing.T) {
	b := mkBlob(1, 5)
	enc := b.Encode()
	h := store.Sum(enc)
	if b.Hash() != h {
		t.Fatal("Hash() disagrees with Sum(Encode())")
	}
	got, err := store.DecodeBlob(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(enc) {
		t.Fatal("decode/re-encode is not the identity")
	}
	// Materialize maps blob-local ref slots back to module-table indices
	// and derives the start address from ref 0.
	tr, err := got.Materialize([]int32{3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Module != 3 || tr.Start != 0x40000040 || tr.ModOff != 0x40 {
		t.Fatalf("materialized trace: module %d start %#x modoff %#x", tr.Module, tr.Start, tr.ModOff)
	}
	if len(tr.Notes) != 1 || tr.Notes[0].Target != 3 {
		t.Fatalf("materialized notes not remapped: %+v", tr.Notes)
	}
	if _, err := got.Materialize([]int32{1, 2}); err == nil {
		t.Fatal("materialize accepted a wrong-arity module mapping")
	}
}

func TestDecodeBlobRejectsCorruption(t *testing.T) {
	enc := mkBlob(2, 3).Encode()
	if _, err := store.DecodeBlob(enc[:len(enc)-4]); err == nil {
		t.Error("truncated blob decoded")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := store.DecodeBlob(bad); err == nil {
		t.Error("bad magic decoded")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &store.Manifest{AppPath: "app.vxe", CodePool: 123, DataPool: 456}
	m.AppKey[0], m.VMKey[0], m.ToolKey[0] = 1, 2, 3
	mod := store.Module{Path: "libwork.so", Base: 0x40000000, Size: 0x1000, MTime: 42}
	mod.Content[0] = 9
	m.Modules = []store.Module{mod}
	b := mkBlob(9, 2)
	m.Traces = []store.TraceRef{{Blob: b.Hash(), Refs: []int32{0}}}

	enc := m.Encode()
	if m.EncodedBytes != uint64(len(enc)) {
		t.Errorf("EncodedBytes %d, want %d", m.EncodedBytes, len(enc))
	}
	got, err := store.DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppPath != m.AppPath || len(got.Modules) != 1 || len(got.Traces) != 1 || got.Traces[0].Blob != b.Hash() {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if hs := got.BlobHashes(); len(hs) != 1 || hs[0] != b.Hash() {
		t.Fatalf("BlobHashes: %v", hs)
	}
	// CheckBlob accepts the matching blob and rejects a placement mismatch.
	if err := got.CheckBlob(got.Traces[0], b); err != nil {
		t.Errorf("CheckBlob rejected the written blob: %v", err)
	}
	other := mkBlob(9, 2)
	other.Refs[0].Base++
	if err := got.CheckBlob(got.Traces[0], other); err == nil {
		t.Error("CheckBlob accepted a blob translated at a different base")
	}
	// Flip one payload byte: the integrity trailer must catch it.
	bad := append([]byte(nil), enc...)
	bad[8] ^= 0x01
	if _, err := store.DecodeManifest(bad); err == nil {
		t.Error("corrupt manifest decoded")
	}
}

func TestPutAllDedup(t *testing.T) {
	s := openStore(t, t.TempDir())
	a, b := mkBlob(1, 4), mkBlob(2, 4)
	rep, hashes, err := s.PutAll([]*store.Blob{a, b, a})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 2 || rep.Deduped != 1 {
		t.Fatalf("added %d deduped %d, want 2/1", rep.Added, rep.Deduped)
	}
	if len(hashes) != 3 || hashes[0] != a.Hash() || hashes[2] != a.Hash() {
		t.Fatalf("hashes: %v", hashes)
	}
	if rep.DedupBytes != uint64(len(a.Encode())) {
		t.Errorf("dedup bytes %d, want %d", rep.DedupBytes, len(a.Encode()))
	}
	// A second batch with the same content writes nothing new.
	rep2, _, err := s.PutAll([]*store.Blob{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Added != 0 || rep2.Deduped != 2 {
		t.Fatalf("second batch added %d deduped %d, want 0/2", rep2.Added, rep2.Deduped)
	}
	st := s.Stats()
	if st.Blobs != 2 {
		t.Fatalf("store holds %d blobs, want 2", st.Blobs)
	}
	got, err := s.Get(a.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(a.Encode()) {
		t.Fatal("stored blob differs from the original")
	}
}

func TestGetQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	b := mkBlob(3, 4)
	if _, _, err := s.PutAll([]*store.Blob{b}); err != nil {
		t.Fatal(err)
	}
	// Flip a byte on disk: content no longer hashes to its name.
	path := filepath.Join(dir, "gen0000", b.Hash().Hex()+".pcb")
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] ^= 0xff
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Hash()); !errors.Is(err, store.ErrBlobCorrupt) {
		t.Fatalf("want ErrBlobCorrupt, got %v", err)
	}
	// The corrupt file moved to quarantine; the hash is now a clean miss.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", b.Hash().Hex()+".pcb")); err != nil {
		t.Errorf("corrupt blob not quarantined: %v", err)
	}
	if _, err := s.Get(b.Hash()); !errors.Is(err, store.ErrBlobMissing) {
		t.Fatalf("want ErrBlobMissing after quarantine, got %v", err)
	}
	// And the content can be rewritten cleanly.
	if _, _, err := s.PutAll([]*store.Blob{b}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b.Hash()); err != nil {
		t.Fatalf("rewrite after quarantine not served: %v", err)
	}
}

func TestRecoverRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	a, b := mkBlob(4, 4), mkBlob(5, 6)
	if _, _, err := s.PutAll([]*store.Blob{a, b}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one blob and delete the advisory meta: a reopen must rebuild
	// the index from the files, quarantining the bad blob.
	path := filepath.Join(dir, "gen0000", a.Hash().Hex()+".pcb")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "blobs.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blobs != 1 || rep.Quarantined != 1 || rep.TmpRemoved != 1 {
		t.Fatalf("recover: %+v, want 1 blob, 1 quarantined, 1 tmp removed", rep)
	}
	if _, err := s.Get(b.Hash()); err != nil {
		t.Errorf("surviving blob unreadable after recover: %v", err)
	}
	if _, err := s.Get(a.Hash()); err == nil {
		t.Error("corrupt blob still served after recover")
	}
	// A missing meta file triggers the same scan-rebuild inside Open.
	if err := os.Remove(filepath.Join(dir, "blobs.json")); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	if _, err := s2.Get(b.Hash()); err != nil {
		t.Errorf("reopen without meta lost the surviving blob: %v", err)
	}
	if st := s2.Stats(); st.Blobs != 1 {
		t.Fatalf("reopen without meta indexes %d blobs, want 1", st.Blobs)
	}
}

func TestCompactPrunesOrphansAndCold(t *testing.T) {
	s := openStore(t, t.TempDir())
	hot, cold, orphan := mkBlob(6, 8), mkBlob(7, 2), mkBlob(8, 4)
	if _, _, err := s.PutAll([]*store.Blob{hot, cold, orphan}); err != nil {
		t.Fatal(err)
	}
	// Age the blobs into an old generation (all live, no threshold).
	live := map[store.Hash]bool{hot.Hash(): true, cold.Hash(): true, orphan.Hash(): true}
	if _, err := s.Compact(live, 0); err != nil {
		t.Fatal(err)
	}
	// Heat up only the hot blob, then compact with a utility threshold and
	// without the orphan.
	for i := 0; i < 50; i++ {
		if _, err := s.Get(hot.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	live = map[store.Hash]bool{hot.Hash(): true, cold.Hash(): true}
	rep, err := s.Compact(live, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Carried != 1 || rep.PrunedOrphans != 1 || rep.PrunedCold != 1 {
		t.Fatalf("compact: %+v, want carried=1 orphans=1 cold=1", rep)
	}
	if len(rep.ColdHashes) != 1 || rep.ColdHashes[0] != cold.Hash() {
		t.Fatalf("cold hashes: %v", rep.ColdHashes)
	}
	if rep.ReclaimedBytes == 0 {
		t.Error("compact reclaimed no bytes")
	}
	if _, err := s.Get(hot.Hash()); err != nil {
		t.Errorf("hot blob lost by compaction: %v", err)
	}
	if s.Has(cold.Hash()) || s.Has(orphan.Hash()) {
		t.Error("pruned blobs still resident")
	}
	if st := s.Stats(); st.Gen != 2 || st.Blobs != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}
}

// fakeRemote is an in-memory L3 that counts round trips.
type fakeRemote struct {
	blobs map[store.Hash][]byte
	calls int
}

func (f *fakeRemote) FetchBlobs(hashes []store.Hash) (map[store.Hash][]byte, error) {
	f.calls++
	out := make(map[store.Hash][]byte)
	for _, h := range hashes {
		if b, ok := f.blobs[h]; ok {
			out[h] = b
		}
	}
	return out, nil
}

func TestTieredWriteThrough(t *testing.T) {
	s := openStore(t, t.TempDir())
	local, remote := mkBlob(10, 3), mkBlob(11, 3)
	if _, _, err := s.PutAll([]*store.Blob{local}); err != nil {
		t.Fatal(err)
	}
	fr := &fakeRemote{blobs: map[store.Hash][]byte{remote.Hash(): remote.Encode()}}
	tiers := &store.Tiered{Store: s, Remote: fr}

	absent := mkBlob(12, 3).Hash()
	got, err := tiers.GetAll([]store.Hash{local.Hash(), remote.Hash(), absent})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("resolved %d of 2 resolvable hashes", len(got))
	}
	if fr.calls != 1 {
		t.Fatalf("remote called %d times, want 1 batched trip", fr.calls)
	}
	// The fetched blob was written through to L2: the next lookup is local.
	if !s.Has(remote.Hash()) {
		t.Fatal("remote blob not written through to the local store")
	}
	if _, err := tiers.Get(remote.Hash()); err != nil {
		t.Fatal(err)
	}
	if fr.calls != 1 {
		t.Fatalf("write-through did not stick: %d remote trips", fr.calls)
	}
	// A remote serving corrupt bytes is skipped, not installed.
	junk := mkBlob(13, 3)
	fr.blobs[junk.Hash()] = []byte("not a blob")
	if got, _ := tiers.GetAll([]store.Hash{junk.Hash()}); len(got) != 0 {
		t.Error("corrupt remote bytes were installed")
	}
	if s.Has(junk.Hash()) {
		t.Error("corrupt remote bytes reached the local store")
	}
}
