package store

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"persistcc/internal/fsx"
	"persistcc/internal/metrics"
	"persistcc/internal/vm"
)

// metaFile is the advisory store index: current generation plus per-blob
// bookkeeping (generation, size, hit counts). It is rebuilt from the blob
// files themselves by Recover, so losing it never loses data.
const metaFile = "blobs.json"

// quarantineDir receives blobs whose bytes no longer hash to their name,
// mirroring the cache database's self-healing idiom.
const quarantineDir = "quarantine"

// blobZipMagic prefixes flate-compressed blob files at rest. The content
// address stays the SHA-256 of the *uncompressed* encoding, so compression
// is purely a storage detail: the wire format, the hash a file is named
// by, and every API boundary carry uncompressed bytes. A valid uncompressed
// encoding starts with the blob magic, never this one, so the prefix is
// unambiguous.
var blobZipMagic = [4]byte{'P', 'C', 'Z', '1'}

// deflateBlob compresses encoded blob bytes for storage. Payloads that do
// not shrink are stored raw (no magic); the reader distinguishes the two
// by prefix.
func deflateBlob(enc []byte) []byte {
	var buf bytes.Buffer
	buf.Write(blobZipMagic[:])
	zw, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return enc
	}
	if _, err := zw.Write(enc); err != nil || zw.Close() != nil {
		return enc
	}
	if buf.Len() >= len(enc) {
		return enc
	}
	return buf.Bytes()
}

// inflateBlob undoes deflateBlob; raw payloads pass through untouched.
func inflateBlob(data []byte) ([]byte, error) {
	if len(data) < 4 || string(data[:4]) != string(blobZipMagic[:]) {
		return data, nil
	}
	zr := flate.NewReader(bytes.NewReader(data[4:]))
	defer zr.Close()
	return io.ReadAll(zr)
}

// ErrBlobMissing reports a hash with no local blob.
var ErrBlobMissing = errors.New("store: blob missing")

// ErrBlobCorrupt reports a blob whose bytes fail the content-address or
// decode check; callers treat it like a miss after the store quarantines
// the file.
var ErrBlobCorrupt = errors.New("store: blob corrupt")

// blobInfo is the per-blob bookkeeping persisted in the meta file. Gen is
// where the blob physically lives (compaction moves it); Born is the
// generation it was first written in, which never changes — the age guard
// that keeps cold-pruning away from blobs too young to have earned hits.
type blobInfo struct {
	Gen   int    `json:"gen"`
	Born  int    `json:"born"`
	Size  uint64 `json:"size"`
	Insts int    `json:"insts"`
	Ops   int    `json:"ops"`
	Hits  uint64 `json:"hits"`
}

type storeMeta struct {
	Gen   int                 `json:"gen"`
	Blobs map[string]blobInfo `json:"blobs"`
}

// Store is the local content-addressed blob store (tier L2) plus its
// in-process decoded-blob map (tier L1). Blobs live under per-generation
// directories (gen0000, gen0001, ...); compaction rewrites the live hot
// set into a fresh generation and prunes the cold remainder.
type Store struct {
	dir string
	fs  fsx.FS
	met *storeMetrics

	mu  sync.Mutex
	gen int
	idx map[Hash]blobInfo

	l1mu sync.RWMutex
	l1   map[Hash]*Blob
}

// Open opens (creating if necessary) the store rooted at dir. All I/O goes
// through fsys — the chaos seam. A corrupt or missing meta file triggers a
// scan-rebuild instead of an error.
func Open(dir string, fsys fsx.FS, reg *metrics.Registry) (*Store, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	s := &Store{
		dir: dir,
		fs:  fsys,
		met: newStoreMetrics(reg),
		idx: make(map[Hash]blobInfo),
		l1:  make(map[Hash]*Blob),
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.loadMeta(); err != nil {
		if _, rerr := s.Recover(); rerr != nil {
			return nil, rerr
		}
	}
	s.publishGauges()
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) genDir(gen int) string {
	return filepath.Join(s.dir, fmt.Sprintf("gen%04d", gen))
}

func (s *Store) blobPath(gen int, h Hash) string {
	return filepath.Join(s.genDir(gen), h.Hex()+".pcb")
}

func (s *Store) loadMeta() error {
	b, err := s.fs.ReadFile(filepath.Join(s.dir, metaFile))
	if err != nil {
		return err
	}
	var m storeMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen = m.Gen
	s.idx = make(map[Hash]blobInfo, len(m.Blobs))
	for hs, info := range m.Blobs {
		h, err := ParseHash(hs)
		if err != nil {
			return err
		}
		s.idx[h] = info
	}
	return nil
}

// metaSeq distinguishes concurrent meta flushes: the store directory is
// shared across managers (and processes), so each writer needs its own
// temp file or racing flushes consume each other's rename source.
var metaSeq atomic.Uint64

// flushMetaLocked writes the meta file atomically. Callers hold s.mu. The
// meta is advisory — a racing writer's flush simply wins with its own
// view, and readRaw's generation scan covers any blob it missed.
func (s *Store) flushMetaLocked() error {
	m := storeMeta{Gen: s.gen, Blobs: make(map[string]blobInfo, len(s.idx))}
	for h, info := range s.idx {
		m.Blobs[h.Hex()] = info
	}
	b, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, metaFile)
	tmp := fmt.Sprintf("%s.%d.%d.tmp", path, os.Getpid(), metaSeq.Add(1))
	if err := s.fs.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return s.fs.Rename(tmp, path)
}

// PutReport summarizes one batch of blob writes.
type PutReport struct {
	Added      int    // blobs newly written
	Deduped    int    // blobs already present (content hit)
	AddedBytes uint64 // bytes written for new blobs
	DedupBytes uint64 // bytes NOT written because the content already existed
}

// PutAll writes a batch of blobs, deduplicating against the existing
// content. The meta file is flushed once per batch; blob files land before
// it does, so a crash between the two leaves only advisory state stale.
func (s *Store) PutAll(blobs []*Blob) (PutReport, []Hash, error) {
	var rep PutReport
	hashes := make([]Hash, 0, len(blobs))
	s.mu.Lock()
	defer s.mu.Unlock()
	madeDir := false
	for _, b := range blobs {
		enc := b.Encode()
		h := Sum(enc)
		hashes = append(hashes, h)
		if info, ok := s.idx[h]; ok {
			if _, err := s.fs.Stat(s.blobPath(info.Gen, h)); err == nil {
				rep.Deduped++
				rep.DedupBytes += uint64(len(enc))
				s.met.dedupBlobs.Inc()
				s.met.dedupBytes.Add(uint64(len(enc)))
				continue
			}
			// Meta said present but the file is gone: fall through and
			// rewrite it.
			delete(s.idx, h)
		}
		if !madeDir {
			if err := s.fs.MkdirAll(s.genDir(s.gen), 0o755); err != nil {
				return rep, hashes, err
			}
			madeDir = true
		}
		path := s.blobPath(s.gen, h)
		if fi, err := s.fs.Stat(path); err == nil {
			// Another store instance over the same directory won the
			// race; content addressing makes the copies identical.
			s.idx[h] = blobInfo{Gen: s.gen, Born: s.gen, Size: uint64(fi.Size()), Insts: len(b.Insts), Ops: len(b.Ops)}
			rep.Deduped++
			rep.DedupBytes += uint64(len(enc))
			s.met.dedupBlobs.Inc()
			s.met.dedupBytes.Add(uint64(len(enc)))
			continue
		}
		stored := deflateBlob(enc)
		tmp := path + ".tmp"
		if err := s.fs.WriteFile(tmp, stored, 0o644); err != nil {
			return rep, hashes, err
		}
		if err := s.fs.Rename(tmp, path); err != nil {
			// A store instance in another process may have raced us on the
			// same temp file; if the destination landed, the content is
			// identical by construction — count it as a dedup hit.
			if _, serr := s.fs.Stat(path); serr != nil {
				return rep, hashes, err
			}
			s.idx[h] = blobInfo{Gen: s.gen, Born: s.gen, Size: uint64(len(stored)), Insts: len(b.Insts), Ops: len(b.Ops)}
			rep.Deduped++
			rep.DedupBytes += uint64(len(enc))
			s.met.dedupBlobs.Inc()
			s.met.dedupBytes.Add(uint64(len(enc)))
			continue
		}
		s.idx[h] = blobInfo{Gen: s.gen, Born: s.gen, Size: uint64(len(stored)), Insts: len(b.Insts), Ops: len(b.Ops)}
		rep.Added++
		rep.AddedBytes += uint64(len(stored))
		s.met.written.Inc()
		s.met.writtenBytes.Add(uint64(len(stored)))
	}
	if err := s.flushMetaLocked(); err != nil {
		return rep, hashes, err
	}
	s.publishGaugesLocked()
	return rep, hashes, nil
}

// PutRaw stores already-encoded blob bytes fetched from a remote tier,
// verifying the content address first.
func (s *Store) PutRaw(h Hash, enc []byte) error {
	if Sum(enc) != h {
		return fmt.Errorf("%w: fetched bytes do not hash to %s", ErrBlobCorrupt, h)
	}
	b, err := DecodeBlob(enc)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if info, ok := s.idx[h]; ok {
		if _, err := s.fs.Stat(s.blobPath(info.Gen, h)); err == nil {
			return nil
		}
		delete(s.idx, h)
	}
	if err := s.fs.MkdirAll(s.genDir(s.gen), 0o755); err != nil {
		return err
	}
	path := s.blobPath(s.gen, h)
	stored := deflateBlob(enc)
	tmp := path + ".tmp"
	if err := s.fs.WriteFile(tmp, stored, 0o644); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		// Racing writer in another process: identical content landed.
		if _, serr := s.fs.Stat(path); serr != nil {
			return err
		}
	}
	s.idx[h] = blobInfo{Gen: s.gen, Born: s.gen, Size: uint64(len(stored)), Insts: len(b.Insts), Ops: len(b.Ops)}
	s.met.written.Inc()
	s.met.writtenBytes.Add(uint64(len(stored)))
	if err := s.flushMetaLocked(); err != nil {
		return err
	}
	s.publishGaugesLocked()
	return nil
}

// Has reports whether the blob is resident locally (L1 or L2).
func (s *Store) Has(h Hash) bool {
	s.l1mu.RLock()
	_, ok := s.l1[h]
	s.l1mu.RUnlock()
	if ok {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.idx[h]
	if !ok {
		return false
	}
	_, err := s.fs.Stat(s.blobPath(info.Gen, h))
	return err == nil
}

// SizeOf returns the encoded size of an indexed blob.
func (s *Store) SizeOf(h Hash) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.idx[h]
	return info.Size, ok
}

// Get resolves a hash through L1 (in-process decoded map) then L2 (local
// disk). A disk blob that fails the content-address or decode check is
// quarantined and reported as ErrBlobCorrupt; an absent blob returns
// ErrBlobMissing. Remote tiers are layered on by Tiered.
func (s *Store) Get(h Hash) (*Blob, error) {
	s.l1mu.RLock()
	b, ok := s.l1[h]
	s.l1mu.RUnlock()
	if ok {
		s.met.hits.With("l1").Inc()
		s.recordHit(h)
		return b, nil
	}
	enc, err := s.readRaw(h)
	if err != nil {
		return nil, err
	}
	b, err = DecodeBlob(enc)
	if err != nil {
		s.quarantineBlob(h)
		return nil, fmt.Errorf("%w: %v", ErrBlobCorrupt, err)
	}
	s.l1mu.Lock()
	s.l1[h] = b
	s.l1mu.Unlock()
	s.met.hits.With("l2").Inc()
	s.recordHit(h)
	return b, nil
}

// GetRaw returns the verified encoded bytes of a blob — the server's
// serving path, where decoding would be wasted work.
func (s *Store) GetRaw(h Hash) ([]byte, error) {
	return s.readRaw(h)
}

// readRaw loads and hash-verifies blob bytes from disk.
func (s *Store) readRaw(h Hash) ([]byte, error) {
	s.mu.Lock()
	info, ok := s.idx[h]
	s.mu.Unlock()
	var path string
	if ok {
		p := s.blobPath(info.Gen, h)
		if _, err := s.fs.Stat(p); err == nil {
			path = p
		}
	}
	if path == "" {
		// Not where the advisory index says, or not indexed at all: scan
		// every generation directory, newest first. A stale meta file — a
		// crash mid-compaction leaves blobs renamed into a generation the
		// meta never learned about — degrades to a slower hit, not a miss.
		matches, _ := s.fs.Glob(filepath.Join(s.dir, "gen[0-9][0-9][0-9][0-9]", h.Hex()+".pcb"))
		if len(matches) == 0 {
			s.met.misses.Inc()
			return nil, fmt.Errorf("%w: %s", ErrBlobMissing, h)
		}
		sort.Strings(matches)
		path = matches[len(matches)-1]
	}
	data, err := s.fs.ReadFile(path)
	if err != nil {
		s.met.misses.Inc()
		return nil, fmt.Errorf("%w: %s: %v", ErrBlobMissing, h, err)
	}
	enc, err := inflateBlob(data)
	if err != nil {
		s.quarantineBlob(h)
		return nil, fmt.Errorf("%w: %s fails decompression: %v", ErrBlobCorrupt, h, err)
	}
	if Sum(enc) != h {
		s.quarantineBlob(h)
		return nil, fmt.Errorf("%w: %s fails content check", ErrBlobCorrupt, h)
	}
	return enc, nil
}

// quarantineBlob moves a corrupt blob out of the addressable space so the
// next lookup is a clean miss (and the next commit can rewrite it).
func (s *Store) quarantineBlob(h Hash) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.idx[h]
	if !ok {
		return
	}
	src := s.blobPath(info.Gen, h)
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir, 0o755); err == nil {
		if err := s.fs.Rename(src, filepath.Join(qdir, h.Hex()+".pcb")); err != nil {
			s.fs.Remove(src)
		}
	} else {
		s.fs.Remove(src)
	}
	delete(s.idx, h)
	s.l1mu.Lock()
	delete(s.l1, h)
	s.l1mu.Unlock()
	s.met.quarantined.Inc()
	s.flushMetaLocked()
	s.publishGaugesLocked()
}

// recordHit bumps the utility counter feeding compaction.
func (s *Store) recordHit(h Hash) {
	s.mu.Lock()
	if info, ok := s.idx[h]; ok {
		info.Hits++
		s.idx[h] = info
	}
	s.mu.Unlock()
}

// Flush persists the advisory meta (hit counters accumulate in memory).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushMetaLocked()
}

// Stats summarizes the store's physical state.
type Stats struct {
	Gen         int    `json:"gen"`
	Blobs       int    `json:"blobs"`
	BlobBytes   uint64 `json:"blob_bytes"`
	Generations int    `json:"generations"`
}

// Stats reports blob count and physical bytes from the in-memory index.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Gen: s.gen}
	gens := make(map[int]bool)
	for _, info := range s.idx {
		st.Blobs++
		st.BlobBytes += info.Size
		gens[info.Gen] = true
	}
	st.Generations = len(gens)
	return st
}

// RecoverReport summarizes a store recovery pass.
type RecoverReport struct {
	Blobs       int // addressable blobs after the scan
	Quarantined int // blobs whose bytes failed the content check
	TmpRemoved  int // abandoned temp files deleted
}

// Recover rebuilds the store index from the blob files themselves:
// abandoned temp files are removed, every blob is re-hashed against its
// name (failures are quarantined), and the meta file is rewritten. Hit
// counters survive when the old meta was readable.
func (s *Store) Recover() (*RecoverReport, error) {
	rep := &RecoverReport{}
	oldInfo := make(map[Hash]blobInfo)
	if b, err := s.fs.ReadFile(filepath.Join(s.dir, metaFile)); err == nil {
		var m storeMeta
		if json.Unmarshal(b, &m) == nil {
			for hs, info := range m.Blobs {
				if h, err := ParseHash(hs); err == nil {
					oldInfo[h] = info
				}
			}
		}
	}
	if tmps, err := s.fs.Glob(filepath.Join(s.dir, "*.tmp")); err == nil {
		for _, p := range tmps {
			if s.fs.Remove(p) == nil {
				rep.TmpRemoved++
			}
		}
	}
	genDirs, err := s.fs.Glob(filepath.Join(s.dir, "gen[0-9][0-9][0-9][0-9]"))
	if err != nil {
		return nil, err
	}
	sort.Strings(genDirs)
	idx := make(map[Hash]blobInfo)
	maxGen := 0
	for _, gd := range genDirs {
		var gen int
		if _, err := fmt.Sscanf(filepath.Base(gd), "gen%d", &gen); err != nil {
			continue
		}
		if gen > maxGen {
			maxGen = gen
		}
		if tmps, err := s.fs.Glob(filepath.Join(gd, "*.tmp")); err == nil {
			for _, p := range tmps {
				if s.fs.Remove(p) == nil {
					rep.TmpRemoved++
				}
			}
		}
		files, err := s.fs.Glob(filepath.Join(gd, "*.pcb"))
		if err != nil {
			return nil, err
		}
		for _, p := range files {
			name := filepath.Base(p)
			h, err := ParseHash(name[:len(name)-len(".pcb")])
			if err != nil {
				s.fs.Remove(p)
				continue
			}
			data, err := s.fs.ReadFile(p)
			if err != nil {
				continue
			}
			enc, zerr := inflateBlob(data)
			var b *Blob
			var derr error
			if zerr == nil {
				b, derr = DecodeBlob(enc)
			}
			if zerr != nil || Sum(enc) != h || derr != nil {
				qdir := filepath.Join(s.dir, quarantineDir)
				if s.fs.MkdirAll(qdir, 0o755) == nil && s.fs.Rename(p, filepath.Join(qdir, name)) == nil {
					rep.Quarantined++
				} else if s.fs.Remove(p) == nil {
					rep.Quarantined++
				}
				s.met.quarantined.Inc()
				continue
			}
			if prev, ok := idx[h]; !ok || gen > prev.Gen {
				// Hit counters and birth generation survive when the old
				// meta was readable; a blob with no record is treated as
				// born where it lies (conservatively young).
				born := gen
				if old, ok := oldInfo[h]; ok && old.Born < born {
					born = old.Born
				}
				idx[h] = blobInfo{Gen: gen, Born: born, Size: uint64(len(data)), Insts: len(b.Insts), Ops: len(b.Ops), Hits: oldInfo[h].Hits}
			}
		}
	}
	s.mu.Lock()
	s.gen = maxGen
	s.idx = idx
	rep.Blobs = len(idx)
	err = s.flushMetaLocked()
	s.publishGaugesLocked()
	s.mu.Unlock()
	s.l1mu.Lock()
	s.l1 = make(map[Hash]*Blob)
	s.l1mu.Unlock()
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// IsNotExist reports whether err is a plain missing-file error, which
// Open's meta load treats as "fresh store".
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

func (s *Store) publishGauges() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishGaugesLocked()
}

func (s *Store) publishGaugesLocked() {
	var bytes uint64
	for _, info := range s.idx {
		bytes += info.Size
	}
	s.met.blobs.Set(float64(len(s.idx)))
	s.met.blobBytes.Set(float64(bytes))
	s.met.generation.Set(float64(s.gen))
}

// translationCost models what re-translating the blob would cost — the
// "value" half of the compaction utility score — using the calibrated
// cost model's translation terms.
func translationCost(info blobInfo) uint64 {
	cm := vm.DefaultCostModel()
	return cm.TransFixed +
		uint64(info.Insts)*(cm.TransFetch+cm.TransPerInst) +
		uint64(info.Ops)*cm.TransPerOp
}
