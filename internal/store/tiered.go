package store

import (
	"fmt"
)

// RemoteBlobs is tier L3: a source that can return encoded blobs for a set
// of hashes — in practice the cache-server client's FetchBlobs. Hashes the
// remote does not hold are simply absent from the result map.
type RemoteBlobs interface {
	FetchBlobs(hashes []Hash) (map[Hash][]byte, error)
}

// Tiered is the single lookup interface over the three tiers: the
// in-process L1 map and local content store L2 live inside Store; a
// RemoteBlobs source is L3. Remote bytes are verified and written through
// to L2, so each shared blob moves across the network once per machine —
// not once per application.
type Tiered struct {
	Store  *Store
	Remote RemoteBlobs // nil = no L3
}

// Get resolves one hash through all tiers.
func (t *Tiered) Get(h Hash) (*Blob, error) {
	got, err := t.GetAll([]Hash{h})
	if err != nil {
		return nil, err
	}
	b, ok := got[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobMissing, h)
	}
	return b, nil
}

// GetAll resolves a set of hashes, batching the L3 round trip for the
// misses. The result holds every hash that resolved; absent entries were
// found in no tier. Corrupt local blobs are quarantined by Store.Get and
// then retried against L3 like any other miss.
func (t *Tiered) GetAll(hashes []Hash) (map[Hash]*Blob, error) {
	out := make(map[Hash]*Blob, len(hashes))
	var missing []Hash
	for _, h := range hashes {
		if _, ok := out[h]; ok {
			continue
		}
		b, err := t.Store.Get(h)
		if err == nil {
			out[h] = b
			continue
		}
		missing = append(missing, h)
	}
	if len(missing) == 0 || t.Remote == nil {
		return out, nil
	}
	fetched, err := t.Remote.FetchBlobs(missing)
	if err != nil {
		return out, err
	}
	for _, h := range missing {
		enc, ok := fetched[h]
		if !ok {
			continue
		}
		if err := t.Store.PutRaw(h, enc); err != nil {
			// Bad bytes from the remote: skip; the trace re-translates.
			continue
		}
		b, err := DecodeBlob(enc)
		if err != nil {
			continue
		}
		t.Store.l1mu.Lock()
		t.Store.l1[h] = b
		t.Store.l1mu.Unlock()
		out[h] = b
		t.Store.met.hits.With("l3").Inc()
	}
	return out, nil
}
