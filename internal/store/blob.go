// Package store is the content-addressed, deduplicated, tiered trace
// store. One blob holds one translated trace keyed by the SHA-256 of its
// encoded bytes — instructions, analysis ops and the relocation recipe —
// so two applications that translate the same shared-library code at the
// same placement produce the *same* blob and share a single on-disk copy.
// Per-application manifests (manifest.go) reference blobs by hash instead
// of embedding trace bodies, generations (compact.go) let the hot set be
// rewritten compactly while cold low-utility blobs are pruned, and the
// tiered lookup (tiered.go) resolves a hash through an in-process L1 map,
// the local content store L2, and optionally a cache-server fleet L3.
//
//pcc:fsxseam
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"persistcc/internal/binenc"
	"persistcc/internal/isa"
	"persistcc/internal/obj"
	"persistcc/internal/vm"
)

// blobMagic identifies encoded blobs holding unoptimized traces. The
// encoding under it is frozen: a trace translated without the optimizer
// must hash to the same address it always has, so optimizer-enabled and
// legacy deployments keep deduplicating against each other's blobs.
var blobMagic = [4]byte{'P', 'C', 'B', '1'}

// blobMagicOpt identifies blobs holding optimizer-rewritten traces. The
// body is the PCB1 layout plus an optimization tail (level, original
// length, source map), so an optimized trace always has a distinct content
// address from its unoptimized form.
var blobMagicOpt = [4]byte{'P', 'C', 'B', '2'}

const (
	maxBlobRefs  = 64
	maxBlobInsts = 4096
)

// Hash is a blob's content address: SHA-256 over its encoded bytes.
type Hash [32]byte

// Hex returns the full lowercase hex form — the blob's file name stem.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// String abbreviates the hash for logs and reports.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// ParseHash parses the full hex form produced by Hex.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return h, fmt.Errorf("store: bad blob hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// Ref identifies one module the blob's code is tied to: the module's
// base-insensitive content key plus the base address the code was
// translated at. Refs make a blob self-describing — two traces hash
// identically exactly when they run the same library content at the same
// placement, which is the precondition for safely sharing the translation.
// Ref 0 is always the blob's own (containing) module.
type Ref struct {
	Content [32]byte // core.ContentKey of the module
	Base    uint32   // module base at translation time
}

// Blob is one translated trace in interchange form. Notes carry blob-local
// ref indices (into Refs) instead of process module-table indices; the
// manifest maps them back when the blob is materialized. The trace start
// address is derived (Refs[0].Base + ModOff), not stored.
type Blob struct {
	Refs   []Ref
	ModOff uint32
	Insts  []isa.Inst
	Ops    []vm.AnalysisOp
	Notes  []vm.RelocNote // Target = index into Refs

	// Optimization tail (PCB2 blobs only; zero values for PCB1).
	OptLevel uint8
	OrigLen  uint16
	SrcIdx   []uint16
}

// Encode serializes the blob deterministically. The encoding is the unit
// of content addressing: Hash() is the SHA-256 of exactly these bytes.
func (b *Blob) Encode() []byte {
	w := &binenc.Writer{}
	if b.OptLevel > 0 {
		w.Raw(blobMagicOpt[:])
	} else {
		w.Raw(blobMagic[:])
	}
	w.U32(uint32(len(b.Refs)))
	for _, ref := range b.Refs {
		w.Raw(ref.Content[:])
		w.U32(ref.Base)
	}
	w.U32(b.ModOff)
	w.U32(uint32(len(b.Insts)))
	for _, in := range b.Insts {
		w.U64(in.EncodeWord())
	}
	w.U32(uint32(len(b.Ops)))
	for _, op := range b.Ops {
		w.U16(op.Pos)
		w.U16(uint16(op.Kind))
		w.U64(op.Arg)
		w.U32(op.Cost)
		w.Bool(op.Spilled)
	}
	w.U32(uint32(len(b.Notes)))
	for _, n := range b.Notes {
		w.U16(n.InstIdx)
		w.U8(uint8(n.Type))
		w.U32(uint32(n.Target))
		w.U32(n.TargetOff)
	}
	if b.OptLevel > 0 {
		w.U8(b.OptLevel)
		w.U16(b.OrigLen)
		w.U32(uint32(len(b.SrcIdx)))
		for _, s := range b.SrcIdx {
			w.U16(s)
		}
	}
	return w.Buf
}

// Sum returns the content address of the encoded form.
func Sum(encoded []byte) Hash { return sha256.Sum256(encoded) }

// Hash returns the blob's content address.
func (b *Blob) Hash() Hash { return Sum(b.Encode()) }

// DecodeBlob parses an encoded blob. Integrity is the caller's concern:
// the store verifies that the bytes hash to the file's name before
// decoding, so a trailer would be redundant.
func DecodeBlob(buf []byte) (*Blob, error) {
	r := &binenc.Reader{Buf: buf}
	magic := r.Raw(4)
	optimized := false
	if r.Err == nil {
		switch string(magic) {
		case string(blobMagic[:]):
		case string(blobMagicOpt[:]):
			optimized = true
		default:
			return nil, fmt.Errorf("store: bad blob magic %q", magic)
		}
	}
	b := &Blob{}
	for i, n := 0, r.Count(maxBlobRefs); i < n && r.Err == nil; i++ {
		var ref Ref
		copy(ref.Content[:], r.Raw(32))
		ref.Base = r.U32()
		b.Refs = append(b.Refs, ref)
	}
	b.ModOff = r.U32()
	for i, n := 0, r.Count(maxBlobInsts); i < n && r.Err == nil; i++ {
		in, err := isa.DecodeWord(r.U64())
		if r.Err == nil && err != nil {
			return nil, fmt.Errorf("store: blob inst %d: %w", i, err)
		}
		b.Insts = append(b.Insts, in)
	}
	for i, n := 0, r.Count(maxBlobInsts*4); i < n && r.Err == nil; i++ {
		var op vm.AnalysisOp
		op.Pos = r.U16()
		op.Kind = vm.OpKind(r.U16())
		op.Arg = r.U64()
		op.Cost = r.U32()
		op.Spilled = r.Bool()
		b.Ops = append(b.Ops, op)
	}
	for i, n := 0, r.Count(maxBlobInsts); i < n && r.Err == nil; i++ {
		var note vm.RelocNote
		note.InstIdx = r.U16()
		note.Type = obj.RelocType(r.U8())
		note.Target = int32(r.U32())
		note.TargetOff = r.U32()
		b.Notes = append(b.Notes, note)
	}
	if optimized {
		b.OptLevel = r.U8()
		b.OrigLen = r.U16()
		for i, n := 0, r.Count(maxBlobInsts); i < n && r.Err == nil; i++ {
			b.SrcIdx = append(b.SrcIdx, r.U16())
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("store: blob decode: %w", err)
	}
	if len(b.Refs) == 0 {
		return nil, fmt.Errorf("store: blob has no module refs")
	}
	if len(b.Insts) == 0 {
		return nil, fmt.Errorf("store: blob has no instructions")
	}
	for i, n := range b.Notes {
		if n.Target < 0 || int(n.Target) >= len(b.Refs) {
			return nil, fmt.Errorf("store: blob note %d targets ref %d of %d", i, n.Target, len(b.Refs))
		}
	}
	if optimized && b.OptLevel == 0 {
		return nil, fmt.Errorf("store: optimized blob with level 0")
	}
	if err := vm.CheckOptMeta(b.OptLevel, b.OrigLen, b.SrcIdx, len(b.Insts)); err != nil {
		return nil, fmt.Errorf("store: blob: %w", err)
	}
	return b, nil
}

// BlobFromTrace converts a trace to interchange form. refOf maps a process
// module-table index to that module's (content key, base) identity; the
// returned indices map blob-local ref slots back to module-table indices
// (slot 0 is t.Module). Traces without a file-backed module cannot be
// persisted and are rejected, mirroring the legacy cache-file writer.
func BlobFromTrace(t *vm.Trace, refOf func(module int32) (Ref, error)) (*Blob, []int32, error) {
	if t.Module < 0 {
		return nil, nil, fmt.Errorf("store: trace at %#x is not file-backed", t.Start)
	}
	b := &Blob{
		ModOff:   t.ModOff,
		Insts:    append([]isa.Inst(nil), t.Insts...),
		Ops:      append([]vm.AnalysisOp(nil), t.Ops...),
		OptLevel: t.OptLevel,
		OrigLen:  t.OrigLen,
	}
	if t.SrcIdx != nil {
		b.SrcIdx = append([]uint16(nil), t.SrcIdx...)
	}
	modules := []int32{t.Module}
	slot := map[int32]int32{t.Module: 0}
	r0, err := refOf(t.Module)
	if err != nil {
		return nil, nil, err
	}
	b.Refs = []Ref{r0}
	for _, n := range t.Notes {
		s, ok := slot[n.Target]
		if !ok {
			ref, err := refOf(n.Target)
			if err != nil {
				return nil, nil, err
			}
			s = int32(len(b.Refs))
			slot[n.Target] = s
			b.Refs = append(b.Refs, ref)
			modules = append(modules, n.Target)
		}
		n.Target = s
		b.Notes = append(b.Notes, n)
	}
	return b, modules, nil
}

// Materialize rebuilds a trace from the blob. modules maps blob-local ref
// slots to module-table indices in the consuming cache file (the inverse
// of the mapping BlobFromTrace returned); it must cover every ref. The
// returned trace owns its slices — blobs are shared across manifests and
// may be cached decoded, so callers must not see aliased state.
func (b *Blob) Materialize(modules []int32) (*vm.Trace, error) {
	if len(modules) != len(b.Refs) {
		return nil, fmt.Errorf("store: materialize got %d module indices for %d refs", len(modules), len(b.Refs))
	}
	t := &vm.Trace{
		Start:    b.Refs[0].Base + b.ModOff,
		Module:   modules[0],
		ModOff:   b.ModOff,
		Insts:    append([]isa.Inst(nil), b.Insts...),
		Ops:      append([]vm.AnalysisOp(nil), b.Ops...),
		OptLevel: b.OptLevel,
		OrigLen:  b.OrigLen,
	}
	if b.SrcIdx != nil {
		t.SrcIdx = append([]uint16(nil), b.SrcIdx...)
	}
	for _, n := range b.Notes {
		n.Target = modules[n.Target]
		t.Notes = append(t.Notes, n)
	}
	t.RecomputeStatic()
	return t, nil
}
