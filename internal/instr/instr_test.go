package instr_test

import (
	"testing"

	"persistcc/internal/instr"
	"persistcc/internal/isa"
	"persistcc/internal/loader"
	"persistcc/internal/testprog"
	"persistcc/internal/vm"
)

const loopSrc = `
.text
.global _start
_start:
	movi t0, 10
	la   t1, buf
loop:
	ld   t2, 0(t1)
	addi t2, t2, 1
	sd   t2, 0(t1)
	addi t0, t0, -1
	bnez t0, loop
	movi a0, 1
	mv   a1, t2
	sys
	halt
.bss
buf:	.space 8
`

func run(t *testing.T, tool vm.Tool) *vm.Result {
	t.Helper()
	exe, libs, err := testprog.Build("prog", loopSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := testprog.Load(exe, libs, loader.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := []vm.Option{}
	if tool != nil {
		opts = append(opts, vm.WithTool(tool))
	}
	res, err := vm.New(p, opts...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 10 {
		t.Fatalf("exit = %d, want 10", res.ExitCode)
	}
	return res
}

func TestBBCount(t *testing.T) {
	res := run(t, &instr.BBCount{})
	if len(res.Stats.Counters) == 0 {
		t.Fatal("no counters recorded")
	}
	var total uint64
	for _, c := range res.Stats.Counters {
		total += c
	}
	if total != res.Stats.TraceExecs {
		t.Errorf("bb count total %d != trace execs %d", total, res.Stats.TraceExecs)
	}
}

func TestBBCountPerInstruction(t *testing.T) {
	light := run(t, &instr.BBCount{})
	heavy := run(t, &instr.BBCount{PerInstruction: true})
	if heavy.Stats.TransTicks <= light.Stats.TransTicks {
		t.Error("per-instruction instrumentation did not increase VM overhead")
	}
	if heavy.Stats.OpTicks <= light.Stats.OpTicks {
		t.Error("per-instruction instrumentation did not increase analysis time")
	}
	var heavyTotal uint64
	for _, c := range heavy.Stats.Counters {
		heavyTotal += c
	}
	if heavyTotal != heavy.Stats.InstsExecuted {
		t.Errorf("per-inst counters %d != instructions executed %d", heavyTotal, heavy.Stats.InstsExecuted)
	}
}

func TestMemTrace(t *testing.T) {
	res := run(t, &instr.MemTrace{})
	// The loop does 1 ld + 1 sd per iteration, 10 iterations.
	if res.Stats.MemRefs != 20 {
		t.Errorf("MemRefs = %d, want 20", res.Stats.MemRefs)
	}
	if res.Stats.MemRefHash == 0 {
		t.Error("MemRefHash not updated")
	}
	loads := run(t, &instr.MemTrace{LoadsOnly: true})
	if loads.Stats.MemRefs != 10 {
		t.Errorf("LoadsOnly MemRefs = %d, want 10", loads.Stats.MemRefs)
	}
}

func TestOpcodeMix(t *testing.T) {
	res := run(t, &instr.OpcodeMix{})
	mix := res.Stats.OpcodeMix
	if mix[isa.OpLd] != 10 || mix[isa.OpSd] != 10 {
		t.Errorf("ld/sd counts = %d/%d, want 10/10", mix[isa.OpLd], mix[isa.OpSd])
	}
	if mix[isa.OpBne] != 10 {
		t.Errorf("bne count = %d, want 10", mix[isa.OpBne])
	}
	var total uint64
	for _, c := range mix {
		total += c
	}
	if total != res.Stats.InstsExecuted {
		t.Errorf("opcode mix total %d != executed %d", total, res.Stats.InstsExecuted)
	}
}

func TestUninstrumentedBaseline(t *testing.T) {
	plain := run(t, nil)
	instrumented := run(t, &instr.BBCount{})
	if instrumented.Stats.Ticks <= plain.Stats.Ticks {
		t.Error("instrumentation is free; it must cost ticks")
	}
	if plain.Stats.OpTicks != 0 {
		t.Error("uninstrumented run has analysis ticks")
	}
}

func TestToolKeysDiffer(t *testing.T) {
	tools := []vm.Tool{
		&instr.BBCount{}, &instr.BBCount{PerInstruction: true},
		&instr.MemTrace{}, &instr.MemTrace{LoadsOnly: true},
		&instr.OpcodeMix{},
	}
	seen := map[uint64]string{}
	for _, tool := range tools {
		h := tool.ConfigHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("config hash collision: %s vs %s/%v", prev, tool.Name(), tool)
		}
		seen[h] = tool.Name()
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"bbcount", "bbcount-inst", "memtrace", "opcodemix"} {
		if instr.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if instr.ByName("nope") != nil {
		t.Error("ByName accepted unknown tool")
	}
}

// customTool exercises the OpKindCustom dispatch path.
type customTool struct {
	hits int
}

func (c *customTool) Name() string       { return "custom" }
func (c *customTool) Version() string    { return "0.1" }
func (c *customTool) ConfigHash() uint64 { return 1 }
func (c *customTool) Instrument(tc *vm.TraceContext) {
	tc.InsertBefore(0, vm.OpKindCustom, 7, 3)
}
func (c *customTool) HandleOp(v *vm.VM, t *vm.Trace, op vm.AnalysisOp, instIdx int) {
	if op.Arg == 7 {
		c.hits++
	}
}

func TestCustomTool(t *testing.T) {
	tool := &customTool{}
	res := run(t, tool)
	if uint64(tool.hits) != res.Stats.TraceExecs {
		t.Errorf("custom hits %d != trace execs %d", tool.hits, res.Stats.TraceExecs)
	}
}
