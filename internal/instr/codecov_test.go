package instr_test

import (
	"errors"
	"testing"

	"persistcc/internal/core"
	"persistcc/internal/instr"
	"persistcc/internal/loader"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// covProgram has two selectable regions so inputs exercise different code.
func covProgram(t *testing.T) *workload.Program {
	t.Helper()
	prog, err := workload.BuildProgram(workload.ProgSpec{
		Name: "covapp",
		Seed: 5,
		Regions: []workload.RegionSpec{
			{Funcs: 6, Module: 0},
			{Funcs: 4, Module: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runCov(t *testing.T, prog *workload.Program, cov *instr.CodeCov, in workload.Input, cfg loader.Config, mgr *core.Manager) *vm.Result {
	t.Helper()
	v, err := prog.NewVM(cfg, in, vm.WithTool(cov))
	if err != nil {
		t.Fatal(err)
	}
	if mgr != nil {
		if _, err := mgr.Prime(v); err != nil && !errors.Is(err, core.ErrNoCache) {
			t.Fatal(err)
		}
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mgr != nil {
		if _, err := mgr.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	return res
}

func TestCodeCovDistinguishesInputs(t *testing.T) {
	prog := covProgram(t)
	inA := workload.Input{Name: "a", Units: []workload.Unit{{Entry: 0, Iters: 2}}}
	inB := workload.Input{Name: "b", Units: []workload.Unit{{Entry: 1, Iters: 2}}}
	inAll := workload.Input{Name: "all", Units: []workload.Unit{{Entry: 0, Iters: 1}, {Entry: 1, Iters: 1}}}

	// Exact mode: the superset property below only holds for
	// instruction-accurate coverage (trace granularity includes
	// speculative tails that differ between runs).
	covA, covB, covAll := instr.NewExactCodeCov(), instr.NewExactCodeCov(), instr.NewExactCodeCov()
	runCov(t, prog, covA, inA, loader.Config{}, nil)
	runCov(t, prog, covB, inB, loader.Config{}, nil)
	runCov(t, prog, covAll, inAll, loader.Config{}, nil)

	if covA.Count() == 0 || covB.Count() == 0 {
		t.Fatal("no coverage recorded")
	}
	// Region 0 has more functions than region 1.
	if covA.Count() <= covB.Count() {
		t.Errorf("region sizes not reflected: A=%d B=%d", covA.Count(), covB.Count())
	}
	// The all-input run covers everything either individual input reached:
	// CoverageOf(c, other) is the fraction of c's code also in other.
	if covA.CoverageOf(covAll) < 0.999 || covB.CoverageOf(covAll) < 0.999 {
		t.Error("superset input does not cover individual inputs")
	}
	// Diff finds B's private region from A's perspective.
	diff := covB.Diff(covA)
	if len(diff) == 0 {
		t.Fatal("diff empty despite disjoint regions")
	}
	// A and B share only the driver/dispatch code.
	shared := covA.CoverageOf(covB)
	if shared > 0.5 {
		t.Errorf("A covered by B = %.2f, expected mostly disjoint", shared)
	}
	// Keys are sorted.
	keys := covAll.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Module > keys[i].Module ||
			(keys[i-1].Module == keys[i].Module && keys[i-1].Off >= keys[i].Off) {
			t.Fatal("keys not sorted")
		}
	}
}

func TestCodeCovStableUnderPersistenceAndASLR(t *testing.T) {
	prog := covProgram(t)
	in := workload.Input{Name: "a", Units: []workload.Unit{{Entry: 0, Iters: 3}, {Entry: 1, Iters: 1}}}
	dir := t.TempDir()
	mgr, err := core.NewManager(dir, core.WithRelocatable())
	if err != nil {
		t.Fatal(err)
	}

	cold := instr.NewCodeCov()
	r1 := runCov(t, prog, cold, in, loader.Config{Placement: loader.PlaceASLR, ASLRSeed: 7}, mgr)

	// Second run: different ASLR seed, traces rebased from the cache —
	// the coverage report must be identical (module-relative keys).
	warm := instr.NewCodeCov()
	r2 := runCov(t, prog, warm, in, loader.Config{Placement: loader.PlaceASLR, ASLRSeed: 8}, mgr)

	if r1.ExitCode != r2.ExitCode {
		t.Fatal("runs diverged")
	}
	if r2.Stats.TracesTranslated != 0 {
		t.Errorf("relocatable reuse still translated %d traces", r2.Stats.TracesTranslated)
	}
	if cold.Count() != warm.Count() {
		t.Fatalf("coverage differs: cold %d, warm %d", cold.Count(), warm.Count())
	}
	if cold.CoverageOf(warm) != 1 || warm.CoverageOf(cold) != 1 {
		t.Error("coverage sets differ between cold and rebased runs")
	}
}

func TestCodeCovAccumulatesAcrossRuns(t *testing.T) {
	prog := covProgram(t)
	suiteCov := instr.NewCodeCov()
	runCov(t, prog, suiteCov, workload.Input{Units: []workload.Unit{{Entry: 0, Iters: 1}}}, loader.Config{}, nil)
	afterA := suiteCov.Count()
	runCov(t, prog, suiteCov, workload.Input{Units: []workload.Unit{{Entry: 1, Iters: 1}}}, loader.Config{}, nil)
	if suiteCov.Count() <= afterA {
		t.Error("suite-level accumulation did not grow")
	}
}

// TestCodeCovConfigKeying: exact and trace-granular (bucketed) coverage
// record different over-approximations, so their persisted instrumentation
// must never share a cache key — neither at the ConfigHash level nor in
// the derived tool key the persistence layer uses.
func TestCodeCovConfigKeying(t *testing.T) {
	exact, bucketed := instr.NewExactCodeCov(), instr.NewCodeCov()
	if exact.ConfigString() == bucketed.ConfigString() {
		t.Fatal("exact and bucketed modes share a config string")
	}
	if exact.ConfigHash() == bucketed.ConfigHash() {
		t.Fatal("exact and bucketed modes share a config hash")
	}
	if core.ToolKey(exact) == core.ToolKey(bucketed) {
		t.Fatal("exact and bucketed modes share a persistence tool key")
	}
}

func TestCovSetMergeAndSerialize(t *testing.T) {
	prog := covProgram(t)
	covA, covB := instr.NewExactCodeCov(), instr.NewExactCodeCov()
	runCov(t, prog, covA, workload.Input{Units: []workload.Unit{{Entry: 0, Iters: 1}}}, loader.Config{}, nil)
	runCov(t, prog, covB, workload.Input{Units: []workload.Unit{{Entry: 1, Iters: 1}}}, loader.Config{}, nil)

	a, b := covA.Snapshot(), covB.Snapshot()
	if a.Len() != covA.Count() || b.Len() != covB.Count() {
		t.Fatalf("snapshot sizes: %d/%d vs %d/%d", a.Len(), covA.Count(), b.Len(), covB.Count())
	}

	// Merge: disjoint region code grows the frontier, re-merging adds zero.
	frontier := instr.NewCovSet()
	if added := frontier.Merge(a); added != a.Len() {
		t.Fatalf("first merge added %d, want %d", added, a.Len())
	}
	grewBy := frontier.Merge(b)
	if grewBy == 0 || grewBy > b.Len() {
		t.Fatalf("second merge added %d of %d", grewBy, b.Len())
	}
	if frontier.Merge(b) != 0 {
		t.Fatal("re-merging a seen set reported new keys")
	}
	if got := b.NewAgainst(frontier); got != 0 {
		t.Fatalf("NewAgainst full frontier = %d, want 0", got)
	}
	if got := b.NewAgainst(a); got != grewBy {
		t.Fatalf("NewAgainst = %d, Merge found %d", got, grewBy)
	}

	// Serialization round-trips exactly and is canonical (order-free).
	enc, err := frontier.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := instr.NewCovSet()
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if back.Len() != frontier.Len() {
		t.Fatalf("round trip: %d keys, want %d", back.Len(), frontier.Len())
	}
	for _, k := range frontier.Keys() {
		if !back.Contains(k) {
			t.Fatalf("round trip lost %+v", k)
		}
	}
	enc2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("encoding is not canonical across round trips")
	}

	// A merged-in set feeds back into a live tool.
	resume := instr.NewExactCodeCov()
	resume.AddSet(frontier)
	if resume.Count() != frontier.Len() {
		t.Fatalf("AddSet: tool has %d keys, want %d", resume.Count(), frontier.Len())
	}

	// Corrupt encodings are rejected, not misparsed.
	if err := instr.NewCovSet().UnmarshalBinary(enc[:3]); err == nil {
		t.Fatal("short input accepted")
	}
	bad := append([]byte("XXXX"), enc[4:]...)
	if err := instr.NewCovSet().UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}
