// Package instr provides the standard instrumentation tools (the analogs of
// stock Pintools) built on the VM's client API (vm.Tool): basic-block
// counting, memory-reference tracing, and opcode-mix profiling.
//
// A tool's identity — name, version, configuration hash — feeds the
// persistence tool key. Persistent caches contain the instrumented traces,
// so two runs may share a cache only when they are "instrumented
// identically"; changing any knob below changes the key and invalidates
// prior caches, exactly as the paper requires.
package instr

import (
	"hash/fnv"

	"persistcc/internal/isa"
	"persistcc/internal/vm"
)

// BBCount counts executions of every trace head: the detailed basic-block
// profiling tool of Figure 5(b). Counters are keyed by trace start address.
type BBCount struct {
	// PerInstruction additionally annotates every instruction (heavier
	// instrumentation, larger VM overhead).
	PerInstruction bool
}

// Name implements vm.Tool.
func (b *BBCount) Name() string { return "bbcount" }

// Version implements vm.Tool.
func (b *BBCount) Version() string { return "1.0" }

// ConfigHash implements vm.Tool.
func (b *BBCount) ConfigHash() uint64 {
	if b.PerInstruction {
		return hashConfig("bbcount", "perinst")
	}
	return hashConfig("bbcount", "trace")
}

// Instrument implements vm.Tool.
func (b *BBCount) Instrument(tc *vm.TraceContext) {
	tc.InsertBefore(0, vm.OpKindCount, uint64(tc.Start()), 4)
	if b.PerInstruction {
		for i := 1; i < len(tc.Insts()); i++ {
			tc.InsertBefore(i, vm.OpKindCount, uint64(tc.PCOf(i)), 2)
		}
	}
}

// MemTrace records every memory reference (the "instrumenting memory
// references" workload of the Oracle evaluation in §4.2).
type MemTrace struct {
	// LoadsOnly restricts instrumentation to loads.
	LoadsOnly bool
}

// Name implements vm.Tool.
func (m *MemTrace) Name() string { return "memtrace" }

// Version implements vm.Tool.
func (m *MemTrace) Version() string { return "1.0" }

// ConfigHash implements vm.Tool.
func (m *MemTrace) ConfigHash() uint64 {
	if m.LoadsOnly {
		return hashConfig("memtrace", "loads")
	}
	return hashConfig("memtrace", "all")
}

// Instrument implements vm.Tool.
func (m *MemTrace) Instrument(tc *vm.TraceContext) {
	for i, in := range tc.Insts() {
		if !in.IsMem() {
			continue
		}
		if m.LoadsOnly && isa.Classify(in.Op) != isa.ClassLoad {
			continue
		}
		// Recording a reference (address formation, buffer append, the
		// analysis routine call) is far costlier than the instruction it
		// shadows — the paper's memory instrumentation quadruples Oracle's
		// run time.
		tc.InsertBefore(i, vm.OpKindMemRef, 0, 48)
	}
}

// OpcodeMix tallies dynamic opcode frequencies.
type OpcodeMix struct{}

// Name implements vm.Tool.
func (o *OpcodeMix) Name() string { return "opcodemix" }

// Version implements vm.Tool.
func (o *OpcodeMix) Version() string { return "1.0" }

// ConfigHash implements vm.Tool.
func (o *OpcodeMix) ConfigHash() uint64 { return hashConfig("opcodemix", "") }

// Instrument implements vm.Tool.
func (o *OpcodeMix) Instrument(tc *vm.TraceContext) {
	for i := range tc.Insts() {
		tc.InsertBefore(i, vm.OpKindOpcodeMix, 0, 2)
	}
}

// ByName returns a stock tool by name ("bbcount", "bbcount-inst",
// "memtrace", "opcodemix", "codecov", "codecov-inst"), or nil.
func ByName(name string) vm.Tool {
	switch name {
	case "bbcount":
		return &BBCount{}
	case "bbcount-inst":
		return &BBCount{PerInstruction: true}
	case "memtrace":
		return &MemTrace{}
	case "opcodemix":
		return &OpcodeMix{}
	case "codecov":
		return NewCodeCov()
	case "codecov-inst":
		return NewExactCodeCov()
	}
	return nil
}

func hashConfig(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
