package instr

import (
	"sort"

	"persistcc/internal/isa"
	"persistcc/internal/vm"
)

// CovKey identifies one static instruction in base-independent coordinates:
// the module index it belongs to and its module-relative offset. Module
// indices follow load order, which is deterministic for a fixed dependency
// set, so keys are comparable across runs of the same program — including
// runs under address-space randomization.
type CovKey struct {
	Module int32
	Off    uint32
}

// CodeCov is the code-coverage characterization tool the paper motivates
// for regression testing ("instrumentation enables tasks like code coverage
// characterization ... to aid debugging"). It records, at trace granularity,
// every static instruction executed. One tool instance may be shared across
// several runs (e.g. a whole regression suite) to accumulate suite-level
// coverage.
type CodeCov struct {
	// PerInstruction selects exact coverage: one analysis op per
	// instruction, so only instructions that actually executed are
	// recorded. The default (trace granularity) is far cheaper but
	// over-approximates: a trace's speculative tail past a
	// conditional branch counts as covered even when never reached,
	// exactly as in trace-granular Pin coverage tools.
	PerInstruction bool

	covered map[CovKey]struct{}
}

// NewCodeCov returns an empty trace-granular coverage recorder.
func NewCodeCov() *CodeCov {
	return &CodeCov{covered: make(map[CovKey]struct{})}
}

// NewExactCodeCov returns an instruction-exact coverage recorder.
func NewExactCodeCov() *CodeCov {
	return &CodeCov{PerInstruction: true, covered: make(map[CovKey]struct{})}
}

// Name implements vm.Tool.
func (c *CodeCov) Name() string { return "codecov" }

// Version implements vm.Tool.
func (c *CodeCov) Version() string { return "1.0" }

// ConfigHash implements vm.Tool.
func (c *CodeCov) ConfigHash() uint64 {
	if c.PerInstruction {
		return hashConfig("codecov", "inst")
	}
	return hashConfig("codecov", "trace")
}

// Instrument inserts one analysis op at each trace head. The op argument
// packs (module, ninsts, offset) so the handler can mark the whole trace
// covered; traces from dynamically generated code are skipped (they have
// no stable identity).
func (c *CodeCov) Instrument(tc *vm.TraceContext) {
	if tc.Module() < 0 {
		return
	}
	if c.PerInstruction {
		for i := range tc.Insts() {
			arg := pack(tc.Module(), 1, tc.ModOff()+uint32(i)*isa.InstSize)
			tc.InsertBefore(i, vm.OpKindCustom, arg, 2)
		}
		return
	}
	tc.InsertBefore(0, vm.OpKindCustom, pack(tc.Module(), len(tc.Insts()), tc.ModOff()), 3)
}

func pack(module int32, n int, off uint32) uint64 {
	return uint64(uint16(module))<<48 | uint64(uint16(n))<<32 | uint64(off)
}

// HandleOp implements vm.OpHandler.
func (c *CodeCov) HandleOp(_ *vm.VM, _ *vm.Trace, op vm.AnalysisOp, _ int) {
	module := int32(uint16(op.Arg >> 48))
	n := int(uint16(op.Arg >> 32))
	off := uint32(op.Arg)
	for i := 0; i < n; i++ {
		c.covered[CovKey{Module: module, Off: off + uint32(i)*isa.InstSize}] = struct{}{}
	}
}

// Count returns the number of covered static instructions.
func (c *CodeCov) Count() int { return len(c.covered) }

// Covered reports whether the key was executed.
func (c *CodeCov) Covered(k CovKey) bool {
	_, ok := c.covered[k]
	return ok
}

// Keys returns the covered set, sorted by (module, offset).
func (c *CodeCov) Keys() []CovKey {
	out := make([]CovKey, 0, len(c.covered))
	for k := range c.covered {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// Diff returns the keys covered by c but not by other — the regression-
// testing question "which code did this test exercise that the baseline
// did not?".
func (c *CodeCov) Diff(other *CodeCov) []CovKey {
	var out []CovKey
	for _, k := range c.Keys() {
		if !other.Covered(k) {
			out = append(out, k)
		}
	}
	return out
}

// CoverageOf returns |c ∩ other| / |c|, the paper's coverage metric.
func (c *CodeCov) CoverageOf(other *CodeCov) float64 {
	if len(c.covered) == 0 {
		return 0
	}
	n := 0
	for k := range c.covered {
		if other.Covered(k) {
			n++
		}
	}
	return float64(n) / float64(len(c.covered))
}
