package instr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"persistcc/internal/isa"
	"persistcc/internal/vm"
)

// CovKey identifies one static instruction in base-independent coordinates:
// the module index it belongs to and its module-relative offset. Module
// indices follow load order, which is deterministic for a fixed dependency
// set, so keys are comparable across runs of the same program — including
// runs under address-space randomization.
type CovKey struct {
	Module int32
	Off    uint32
}

// CodeCov is the code-coverage characterization tool the paper motivates
// for regression testing ("instrumentation enables tasks like code coverage
// characterization ... to aid debugging"). It records, at trace granularity,
// every static instruction executed. One tool instance may be shared across
// several runs (e.g. a whole regression suite) to accumulate suite-level
// coverage.
type CodeCov struct {
	// PerInstruction selects exact coverage: one analysis op per
	// instruction, so only instructions that actually executed are
	// recorded. The default (trace granularity) is far cheaper but
	// over-approximates: a trace's speculative tail past a
	// conditional branch counts as covered even when never reached,
	// exactly as in trace-granular Pin coverage tools.
	PerInstruction bool

	covered map[CovKey]struct{}
}

// NewCodeCov returns an empty trace-granular coverage recorder.
func NewCodeCov() *CodeCov {
	return &CodeCov{covered: make(map[CovKey]struct{})}
}

// NewExactCodeCov returns an instruction-exact coverage recorder.
func NewExactCodeCov() *CodeCov {
	return &CodeCov{PerInstruction: true, covered: make(map[CovKey]struct{})}
}

// Name implements vm.Tool.
func (c *CodeCov) Name() string { return "codecov" }

// Version implements vm.Tool.
func (c *CodeCov) Version() string { return "1.0" }

// ConfigString is the canonical description of every knob that changes
// what the tool records. ConfigHash derives from exactly this string, so
// any present or future configuration dimension is automatically part of
// the persistence key: caches instrumented under exact (per-instruction)
// coverage can never be primed into a bucketed (trace-granular) run, and
// vice versa — the two modes over-approximate differently, so sharing a
// key would silently corrupt accumulated coverage.
func (c *CodeCov) ConfigString() string {
	if c.PerInstruction {
		return "mode=inst"
	}
	return "mode=trace"
}

// ConfigHash implements vm.Tool.
func (c *CodeCov) ConfigHash() uint64 {
	return hashConfig("codecov", c.ConfigString())
}

// Instrument inserts one analysis op at each trace head. The op argument
// packs (module, ninsts, offset) so the handler can mark the whole trace
// covered; traces from dynamically generated code are skipped (they have
// no stable identity).
func (c *CodeCov) Instrument(tc *vm.TraceContext) {
	if tc.Module() < 0 {
		return
	}
	if c.PerInstruction {
		for i := range tc.Insts() {
			arg := pack(tc.Module(), 1, tc.ModOff()+uint32(i)*isa.InstSize)
			tc.InsertBefore(i, vm.OpKindCustom, arg, 2)
		}
		return
	}
	tc.InsertBefore(0, vm.OpKindCustom, pack(tc.Module(), len(tc.Insts()), tc.ModOff()), 3)
}

func pack(module int32, n int, off uint32) uint64 {
	return uint64(uint16(module))<<48 | uint64(uint16(n))<<32 | uint64(off)
}

// HandleOp implements vm.OpHandler.
func (c *CodeCov) HandleOp(_ *vm.VM, _ *vm.Trace, op vm.AnalysisOp, _ int) {
	module := int32(uint16(op.Arg >> 48))
	n := int(uint16(op.Arg >> 32))
	off := uint32(op.Arg)
	for i := 0; i < n; i++ {
		c.covered[CovKey{Module: module, Off: off + uint32(i)*isa.InstSize}] = struct{}{}
	}
}

// Count returns the number of covered static instructions.
func (c *CodeCov) Count() int { return len(c.covered) }

// Covered reports whether the key was executed.
func (c *CodeCov) Covered(k CovKey) bool {
	_, ok := c.covered[k]
	return ok
}

// Keys returns the covered set, sorted by (module, offset).
func (c *CodeCov) Keys() []CovKey {
	out := make([]CovKey, 0, len(c.covered))
	for k := range c.covered {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// Diff returns the keys covered by c but not by other — the regression-
// testing question "which code did this test exercise that the baseline
// did not?".
func (c *CodeCov) Diff(other *CodeCov) []CovKey {
	var out []CovKey
	for _, k := range c.Keys() {
		if !other.Covered(k) {
			out = append(out, k)
		}
	}
	return out
}

// CoverageOf returns |c ∩ other| / |c|, the paper's coverage metric.
func (c *CodeCov) CoverageOf(other *CodeCov) float64 {
	if len(c.covered) == 0 {
		return 0
	}
	n := 0
	for k := range c.covered {
		if other.Covered(k) {
			n++
		}
	}
	return float64(n) / float64(len(c.covered))
}

// Snapshot copies the current covered set into a standalone CovSet, the
// detached form corpus schedulers and coverage reports work with.
func (c *CodeCov) Snapshot() *CovSet {
	s := NewCovSet()
	for k := range c.covered {
		s.m[k] = struct{}{}
	}
	return s
}

// AddSet folds a detached set back into the tool's accumulated coverage
// (e.g. restoring suite-level coverage persisted by a previous run).
func (c *CodeCov) AddSet(s *CovSet) {
	for k := range s.m {
		c.covered[k] = struct{}{}
	}
}

// CovSet is a standalone, mergeable, serializable set of covered static
// instructions. Coverage-guided fuzzing and suite-level regression
// tracking both need coverage as *data* — merged across runs, compared
// against a global frontier, and persisted alongside a corpus entry —
// independent of any live CodeCov tool instance.
type CovSet struct {
	m map[CovKey]struct{}
}

// NewCovSet returns an empty set.
func NewCovSet() *CovSet { return &CovSet{m: make(map[CovKey]struct{})} }

// Len returns the number of keys in the set.
func (s *CovSet) Len() int { return len(s.m) }

// Contains reports membership.
func (s *CovSet) Contains(k CovKey) bool {
	_, ok := s.m[k]
	return ok
}

// Add inserts one key.
func (s *CovSet) Add(k CovKey) { s.m[k] = struct{}{} }

// Merge folds other into s and returns how many keys were new — the
// coverage-feedback signal: a mutant whose probe run merges zero new keys
// taught the corpus nothing.
func (s *CovSet) Merge(other *CovSet) int {
	added := 0
	for k := range other.m {
		if _, ok := s.m[k]; !ok {
			s.m[k] = struct{}{}
			added++
		}
	}
	return added
}

// NewAgainst returns how many of s's keys are absent from frontier,
// without modifying either set (a dry-run Merge).
func (s *CovSet) NewAgainst(frontier *CovSet) int {
	n := 0
	for k := range s.m {
		if _, ok := frontier.m[k]; !ok {
			n++
		}
	}
	return n
}

// Keys returns the set sorted by (module, offset).
func (s *CovSet) Keys() []CovKey {
	out := make([]CovKey, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// covSetMagic versions the CovSet encoding.
const covSetMagic = "PCV1"

// MarshalBinary implements encoding.BinaryMarshaler: a sorted,
// delta-compressed encoding (per module: key count, then offset deltas as
// uvarints) that is byte-identical for equal sets regardless of insertion
// order — safe to diff, content-address, or commit.
func (s *CovSet) MarshalBinary() ([]byte, error) {
	keys := s.Keys()
	buf := make([]byte, 0, 8+len(keys)*2)
	buf = append(buf, covSetMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	var prevMod int32
	var prevOff uint32
	first := true
	for _, k := range keys {
		if first || k.Module != prevMod {
			buf = binary.AppendUvarint(buf, 0) // module marker
			buf = binary.AppendVarint(buf, int64(k.Module))
			prevOff = 0
			first = false
		}
		// Offsets are instruction-aligned and strictly increasing within
		// a module; 1+delta/InstSize keeps every record nonzero so it can
		// never collide with the module marker.
		buf = binary.AppendUvarint(buf, 1+uint64(k.Off-prevOff)/isa.InstSize)
		prevMod, prevOff = k.Module, k.Off
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, merging the
// decoded keys into s (decode into a fresh NewCovSet for exact contents).
func (s *CovSet) UnmarshalBinary(data []byte) error {
	if len(data) < len(covSetMagic) || string(data[:len(covSetMagic)]) != covSetMagic {
		return fmt.Errorf("instr: covset: bad magic")
	}
	if s.m == nil {
		s.m = make(map[CovKey]struct{})
	}
	rest := data[len(covSetMagic):]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return fmt.Errorf("instr: covset: truncated count")
	}
	rest = rest[w:]
	var mod int32
	var off uint32
	haveMod := false
	for i := uint64(0); i < n; i++ {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return fmt.Errorf("instr: covset: truncated at key %d", i)
		}
		rest = rest[w:]
		if v == 0 {
			m, w := binary.Varint(rest)
			if w <= 0 {
				return fmt.Errorf("instr: covset: truncated module at key %d", i)
			}
			rest = rest[w:]
			mod, off, haveMod = int32(m), 0, true
			v, w = binary.Uvarint(rest)
			if w <= 0 || v == 0 {
				return fmt.Errorf("instr: covset: missing offset after module at key %d", i)
			}
			rest = rest[w:]
		}
		if !haveMod {
			return fmt.Errorf("instr: covset: key before module marker")
		}
		off += uint32(v-1) * isa.InstSize
		s.m[CovKey{Module: mod, Off: off}] = struct{}{}
	}
	return nil
}
