package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "longer-name") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: both rows' second column starts at the same offset.
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if r1 != r2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "extra", "cells")
	out := tb.Render()
	if !strings.Contains(out, "cells") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.256) != "25.6%" {
		t.Error(Pct(0.256))
	}
	if Ms(1_500_000) != "1.500ms" {
		t.Error(Ms(1_500_000))
	}
	if Ratio(12.34) != "12.3x" {
		t.Error(Ratio(12.34))
	}
	if Bytes(512) != "512B" || Bytes(2048) != "2.0KiB" || Bytes(3<<20) != "3.0MiB" {
		t.Error(Bytes(512), Bytes(2048), Bytes(3<<20))
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(100, 10) != 0.9 {
		t.Error("improvement wrong")
	}
	if Improvement(0, 10) != 0 {
		t.Error("zero base not handled")
	}
	if Improvement(100, 150) != -0.5 {
		t.Error("regression not negative")
	}
}

func TestTimeline(t *testing.T) {
	events := []uint64{0, 50, 99}
	strip := Timeline(events, 100, 10)
	if len(strip) != 10 {
		t.Fatalf("strip %q", strip)
	}
	if strip[0] != '|' || strip[4] != '|' || strip[9] != '|' {
		t.Errorf("strip %q", strip)
	}
	if strings.Count(strip, "|") != 3 {
		t.Errorf("strip %q", strip)
	}
	if got := BucketFill(events, 100, 10); got != 0.3 {
		t.Errorf("BucketFill = %v", got)
	}
	if Timeline(nil, 0, 5) != "....." {
		t.Error("empty timeline wrong")
	}
	// Events at/past total clamp into the last bucket rather than panic.
	if s := Timeline([]uint64{200}, 100, 10); s[9] != '|' {
		t.Errorf("clamping failed: %q", s)
	}
}
