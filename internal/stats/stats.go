// Package stats provides the small formatting toolkit the experiment
// harness uses to render paper-style tables, bar breakdowns and timelines
// as plain text.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with padded columns.
func (t *Table) Render() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Pct formats a 0..1 fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Ms formats ticks as virtual milliseconds.
func Ms(ticks uint64) string { return fmt.Sprintf("%.3fms", float64(ticks)/1e6) }

// Ratio formats a multiplier ("12.3x").
func Ratio(r float64) string { return fmt.Sprintf("%.1fx", r) }

// Bytes formats a byte count with a binary unit.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Improvement returns (base-new)/base, the paper's "% improvement".
func Improvement(base, new uint64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(base) - float64(new)) / float64(base)
}

// Timeline renders event ticks as a fixed-width strip: '|' for buckets
// containing at least one event, '.' otherwise (Figure 2(a)'s vertical
// lines).
func Timeline(events []uint64, total uint64, cols int) string {
	if cols <= 0 {
		cols = 60
	}
	buf := make([]byte, cols)
	for i := range buf {
		buf[i] = '.'
	}
	if total == 0 {
		return string(buf)
	}
	for _, e := range events {
		i := int(uint64(cols) * e / (total + 1))
		if i >= cols {
			i = cols - 1
		}
		buf[i] = '|'
	}
	return string(buf)
}

// BucketFill returns the fraction of timeline buckets containing events —
// a scalar proxy for "translation requests occur throughout the run".
func BucketFill(events []uint64, total uint64, cols int) float64 {
	strip := Timeline(events, total, cols)
	n := 0
	for i := 0; i < len(strip); i++ {
		if strip[i] == '|' {
			n++
		}
	}
	return float64(n) / float64(len(strip))
}
