package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInst(r *rand.Rand) Inst {
	return Inst{
		Op:  Op(r.Intn(NumOps)),
		Rd:  uint8(r.Intn(NumRegs)),
		Rs1: uint8(r.Intn(NumRegs)),
		Rs2: uint8(r.Intn(NumRegs)),
		Imm: int32(r.Uint32()),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{Op: Op(op % uint8(NumOps)), Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs, Imm: imm}
		var b [InstSize]byte
		in.Encode(b[:])
		out, err := Decode(b[:])
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeWordRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 2000; n++ {
		in := randomInst(r)
		out, err := DecodeWord(in.EncodeWord())
		if err != nil {
			t.Fatalf("DecodeWord(%v): %v", in, err)
		}
		if in != out {
			t.Fatalf("round trip mismatch: %v != %v", in, out)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		b    [InstSize]byte
	}{
		{"bad opcode", [InstSize]byte{255, 0, 0, 0, 0, 0, 0, 0}},
		{"opCount opcode", [InstSize]byte{byte(opCount), 0, 0, 0, 0, 0, 0, 0}},
		{"bad rd", [InstSize]byte{byte(OpAdd), 32, 0, 0, 0, 0, 0, 0}},
		{"bad rs1", [InstSize]byte{byte(OpAdd), 0, 99, 0, 0, 0, 0, 0}},
		{"bad rs2", [InstSize]byte{byte(OpAdd), 0, 0, 200, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		if _, err := Decode(c.b[:]); err == nil {
			t.Errorf("%s: Decode accepted invalid encoding", c.name)
		}
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("Decode accepted short buffer")
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		name := o.String()
		if name == "" || name[0] == 'o' && len(name) > 3 && name[:3] == "op(" {
			t.Errorf("opcode %d has no mnemonic", o)
		}
		back, ok := OpByName(name)
		if !ok || back != o {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", name, back, ok, o)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
}

func TestRegNames(t *testing.T) {
	for r := uint8(0); r < NumRegs; r++ {
		name := RegName(r)
		back, ok := RegByName(name)
		if !ok || back != r {
			t.Errorf("RegByName(%q) = %d, %v; want %d, true", name, back, ok, r)
		}
	}
	for _, c := range []struct {
		name string
		want uint8
	}{{"zero", 0}, {"ra", 1}, {"sp", 2}, {"a0", RegA0}, {"t0", RegT0}, {"s0", RegS0}, {"r17", 17}} {
		got, ok := RegByName(c.name)
		if !ok || got != c.want {
			t.Errorf("RegByName(%q) = %d, %v; want %d", c.name, got, ok, c.want)
		}
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("RegByName accepted r32")
	}
	if _, ok := RegByName("x5"); ok {
		t.Error("RegByName accepted x5")
	}
}

func TestTerminatorClassification(t *testing.T) {
	term := map[Op]bool{OpJal: true, OpJalr: true, OpSys: true, OpHalt: true}
	for o := Op(0); o < opCount; o++ {
		in := Inst{Op: o}
		if got := in.IsTerminator(); got != term[o] {
			t.Errorf("%s.IsTerminator() = %v, want %v", o, got, term[o])
		}
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		in   Inst
		uses RegMask
		defs RegMask
	}{
		{Inst{Op: OpAdd, Rd: 5, Rs1: 6, Rs2: 7}, RegMask(1<<6 | 1<<7), RegMask(1 << 5)},
		{Inst{Op: OpAddI, Rd: 5, Rs1: 6, Rs2: 7}, RegMask(1 << 6), RegMask(1 << 5)}, // rs2 ignored
		{Inst{Op: OpMovI, Rd: 5, Rs1: 6}, 0, RegMask(1 << 5)},
		{Inst{Op: OpMovHI, Rd: 5, Rs1: 6}, RegMask(1 << 6), RegMask(1 << 5)},
		{Inst{Op: OpLd, Rd: 5, Rs1: 2}, RegMask(1 << 2), RegMask(1 << 5)},
		{Inst{Op: OpSd, Rs1: 2, Rs2: 5}, RegMask(1<<2 | 1<<5), 0},
		{Inst{Op: OpBeq, Rs1: 5, Rs2: 6}, RegMask(1<<5 | 1<<6), 0},
		{Inst{Op: OpJal, Rd: RegRA}, 0, RegMask(1 << RegRA)},
		{Inst{Op: OpJalr, Rd: 0, Rs1: 5}, RegMask(1 << 5), 0}, // writes r0: discarded
		{Inst{Op: OpNop}, 0, 0},
		{Inst{Op: OpHalt}, 0, 0},
		{Inst{Op: OpAdd, Rd: 0, Rs1: 0, Rs2: 0}, 0, 0}, // r0 never tracked
	}
	for _, c := range cases {
		if got := c.in.Uses(); got != c.uses {
			t.Errorf("%v.Uses() = %08x, want %08x", c.in, got, c.uses)
		}
		if got := c.in.Defs(); got != c.defs {
			t.Errorf("%v.Defs() = %08x, want %08x", c.in, got, c.defs)
		}
	}
	// Syscall reads a0..a5 and writes a0.
	sys := Inst{Op: OpSys}
	for r := uint8(RegA0); r <= RegA5; r++ {
		if !sys.Uses().Has(r) {
			t.Errorf("sys does not use %s", RegName(r))
		}
	}
	if !sys.Defs().Has(RegA0) {
		t.Error("sys does not def a0")
	}
}

func TestRegMask(t *testing.T) {
	var m RegMask
	m = m.Add(3).Add(7).Add(3).Add(0) // adding r0 is a no-op
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if !m.Has(3) || !m.Has(7) || m.Has(0) || m.Has(4) {
		t.Fatalf("membership wrong: %08x", m)
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		OpAdd: ClassALU, OpMovI: ClassALU, OpNop: ClassALU, OpLdPC: ClassALU,
		OpLb: ClassLoad, OpLd: ClassLoad, OpLwU: ClassLoad,
		OpSb: ClassStore, OpSd: ClassStore,
		OpBeq: ClassBranch, OpBgeU: ClassBranch,
		OpJal: ClassJump, OpJalr: ClassJump,
		OpSys: ClassSys, OpHalt: ClassHalt,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%s) = %d, want %d", op, got, want)
		}
	}
}

func TestSyscallNames(t *testing.T) {
	for n := uint64(1); n <= 10; n++ {
		if name := SyscallName(n); name == "" || name[:3] == "sys" && n != 0 && name[3] == '(' {
			t.Errorf("syscall %d has no name: %q", n, name)
		}
	}
	if got := SyscallName(999); got != "sys(999)" {
		t.Errorf("SyscallName(999) = %q", got)
	}
}
