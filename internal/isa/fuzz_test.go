package isa

import (
	"bytes"
	"testing"
)

// FuzzDecodeInstr checks the VR64 decoder is total and that everything it
// accepts round-trips exactly through both encoders: Decode(b) re-encodes
// to the same 8 bytes, and the word form agrees with the byte form. The
// deep cache verifier leans on this equivalence when it re-derives control
// flow from persisted instruction streams.
func FuzzDecodeInstr(f *testing.F) {
	seeds := []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAddI, Rd: 1, Rs1: 2, Imm: -4},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 16},
		{Op: OpJal, Rd: 1, Imm: 0x40},
		{Op: OpJalr, Rd: 1, Rs1: 5},
		{Op: OpLd, Rd: 3, Rs1: 2, Imm: 8},
		{Op: OpSd, Rs1: 2, Rs2: 3, Imm: -8},
		{Op: OpMovHI, Rd: 7, Rs1: 7, Imm: 1 << 20},
	}
	for _, in := range seeds {
		var b [InstSize]byte
		in.Encode(b[:])
		f.Add(b[:])
	}
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0}) // invalid opcode
	f.Add([]byte{0, 40, 0, 0, 0, 0, 0, 0})   // register out of range
	f.Add([]byte{1, 2, 3})                   // short buffer

	f.Fuzz(func(t *testing.T, b []byte) {
		in, err := Decode(b)
		if err != nil {
			return
		}
		var out [InstSize]byte
		in.Encode(out[:])
		if !bytes.Equal(out[:], b[:InstSize]) {
			t.Fatalf("re-encode mismatch: decoded %v, % x != % x", in, out, b[:InstSize])
		}
		in2, err := DecodeWord(in.EncodeWord())
		if err != nil {
			t.Fatalf("word decode rejected an accepted instruction %v: %v", in, err)
		}
		if in2 != in {
			t.Fatalf("word round trip changed the instruction: %v != %v", in2, in)
		}
	})
}
