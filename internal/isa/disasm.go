package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// regNames maps register numbers to their ABI names.
var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5", "a6",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
}

// RegName returns the ABI name of register r ("zero", "ra", "sp", ...).
func RegName(r uint8) string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// RegByName resolves an ABI name ("a0") or a raw name ("r5") to a register
// number.
func RegByName(name string) (uint8, bool) {
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	if strings.HasPrefix(name, "r") {
		n, err := strconv.Atoi(name[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

// String renders the instruction in assembler syntax. The output is
// accepted verbatim by the assembler in internal/asm, with pc-relative
// control-flow targets printed as ".+offset"/".-offset" expressions.
func (i Inst) String() string {
	rd, rs1, rs2 := RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2)
	switch i.Op {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpSys:
		return "sys"
	case OpMovI:
		return fmt.Sprintf("movi %s, %d", rd, i.Imm)
	case OpMovHI:
		return fmt.Sprintf("movhi %s, %s, %d", rd, rs1, i.Imm)
	case OpLdPC:
		return fmt.Sprintf("ldpc %s, %s", rd, relTarget(i.Imm))
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpSllI, OpSrlI, OpSraI, OpSltI, OpSltUI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rd, rs1, i.Imm)
	case OpLb, OpLbU, OpLh, OpLhU, OpLw, OpLwU, OpLd:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rd, i.Imm, rs1)
	case OpSb, OpSh, OpSw, OpSd:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rs2, i.Imm, rs1)
	case OpJal:
		return fmt.Sprintf("jal %s, %s", rd, relTarget(i.Imm))
	case OpJalr:
		return fmt.Sprintf("jalr %s, %s, %d", rd, rs1, i.Imm)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltU, OpBgeU:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, rs1, rs2, relTarget(i.Imm))
	}
	// Remaining opcodes are reg-reg ALU.
	return fmt.Sprintf("%s %s, %s, %s", i.Op, rd, rs1, rs2)
}

func relTarget(imm int32) string {
	if imm < 0 {
		return fmt.Sprintf(".-%d", -int64(imm))
	}
	return fmt.Sprintf(".+%d", imm)
}
