package isa

// Class is a coarse classification of opcodes used by the trace compiler,
// the liveness analysis and the instrumentation API.
type Class uint8

const (
	ClassALU    Class = iota // arithmetic/logic, including movi/movhi/ldpc/nop
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional control transfer
	ClassJump                // unconditional control transfer (jal/jalr)
	ClassSys                 // system call
	ClassHalt                // machine stop
)

// Classify returns the coarse class of the opcode.
func Classify(o Op) Class {
	switch o {
	case OpLb, OpLbU, OpLh, OpLhU, OpLw, OpLwU, OpLd:
		return ClassLoad
	case OpSb, OpSh, OpSw, OpSd:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltU, OpBgeU:
		return ClassBranch
	case OpJal, OpJalr:
		return ClassJump
	case OpSys:
		return ClassSys
	case OpHalt:
		return ClassHalt
	}
	return ClassALU
}

// IsTerminator reports whether the instruction unconditionally ends a trace:
// unconditional transfers, system calls and halt. This mirrors Pin's trace
// definition ("a linear sequence of instructions fetched from a starting
// address until a fixed instruction count is reached or an unconditional
// branch instruction is encountered").
func (i Inst) IsTerminator() bool {
	switch i.Op {
	case OpJal, OpJalr, OpSys, OpHalt:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch
// (a potential side exit of a trace).
func (i Inst) IsCondBranch() bool { return Classify(i.Op) == ClassBranch }

// IsDirectJump reports whether the instruction is an unconditional transfer
// whose target is known statically (pc-relative).
func (i Inst) IsDirectJump() bool { return i.Op == OpJal }

// IsIndirectJump reports whether the instruction transfers control to a
// register-computed address.
func (i Inst) IsIndirectJump() bool { return i.Op == OpJalr }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool {
	c := Classify(i.Op)
	return c == ClassLoad || c == ClassStore
}

// RegMask is a bit set over the 32 architectural registers.
type RegMask uint32

// Has reports whether register r is in the mask.
func (m RegMask) Has(r uint8) bool { return m&(1<<r) != 0 }

// Add returns the mask with register r added. r0 is never added: it is
// hardwired zero and is neither a meaningful use nor a meaningful def.
func (m RegMask) Add(r uint8) RegMask {
	if r == RegZero {
		return m
	}
	return m | 1<<r
}

// Count returns the number of registers in the mask.
func (m RegMask) Count() int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// Uses returns the set of registers the instruction reads.
func (i Inst) Uses() RegMask {
	var m RegMask
	switch Classify(i.Op) {
	case ClassALU:
		switch i.Op {
		case OpNop, OpHalt, OpMovI, OpLdPC:
			// no register sources
		case OpMovHI:
			m = m.Add(i.Rs1)
		case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpSllI, OpSrlI, OpSraI, OpSltI, OpSltUI:
			m = m.Add(i.Rs1)
		default: // reg-reg ALU
			m = m.Add(i.Rs1).Add(i.Rs2)
		}
	case ClassLoad:
		m = m.Add(i.Rs1)
	case ClassStore:
		m = m.Add(i.Rs1).Add(i.Rs2)
	case ClassBranch:
		m = m.Add(i.Rs1).Add(i.Rs2)
	case ClassJump:
		if i.Op == OpJalr {
			m = m.Add(i.Rs1)
		}
	case ClassSys:
		// The emulation unit reads a0..a5.
		for r := uint8(RegA0); r <= RegA5; r++ {
			m = m.Add(r)
		}
	}
	return m
}

// Defs returns the set of registers the instruction writes.
func (i Inst) Defs() RegMask {
	var m RegMask
	switch Classify(i.Op) {
	case ClassALU:
		if i.Op != OpNop && i.Op != OpHalt {
			m = m.Add(i.Rd)
		}
	case ClassLoad:
		m = m.Add(i.Rd)
	case ClassJump:
		m = m.Add(i.Rd)
	case ClassSys:
		m = m.Add(RegA0)
	}
	return m
}
