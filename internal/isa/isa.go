// Package isa defines VR64, the virtual RISC instruction set executed by the
// guest programs in this repository.
//
// VR64 is a 64-bit register machine with a 32-bit address space and a fixed
// 8-byte instruction encoding. It is deliberately simple: the point of this
// repository is the run-time compilation system built on top of it (see
// internal/vm and internal/core), and a fixed-width RISC encoding keeps the
// translator, assembler and linker honest without x86-sized complexity.
//
// Encoding (little endian, 8 bytes, 8-byte aligned):
//
//	byte 0: opcode
//	byte 1: rd  (destination register)
//	byte 2: rs1 (first source register)
//	byte 3: rs2 (second source register)
//	bytes 4-7: imm (signed 32-bit immediate)
//
// Register r0 is hardwired to zero; writes to it are discarded.
// Control-flow immediates are byte offsets relative to the address of the
// branch instruction itself (target = pc + imm).
package isa

import (
	"encoding/binary"
	"fmt"
)

// InstSize is the size in bytes of every encoded instruction.
const InstSize = 8

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// Op identifies a VR64 operation.
type Op uint8

// The complete VR64 opcode set.
const (
	OpNop   Op = iota
	OpHalt     // stop the machine
	OpMovI     // rd = sign-extend(imm)
	OpMovHI    // rd = (imm << 32) | (rs1 & 0xffffffff)
	OpLdPC     // rd = pc + imm (position-independent address formation)

	// Register-register ALU.
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpMul  // rd = rs1 * rs2
	OpDiv  // rd = rs1 / rs2 (signed; x/0 == 0)
	OpDivU // rd = rs1 / rs2 (unsigned; x/0 == 0)
	OpRem  // rd = rs1 % rs2 (signed; x%0 == x)
	OpRemU // rd = rs1 % rs2 (unsigned; x%0 == x)
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpSll  // rd = rs1 << (rs2 & 63)
	OpSrl  // rd = rs1 >> (rs2 & 63) (logical)
	OpSra  // rd = rs1 >> (rs2 & 63) (arithmetic)
	OpSlt  // rd = 1 if rs1 < rs2 (signed) else 0
	OpSltU // rd = 1 if rs1 < rs2 (unsigned) else 0

	// Register-immediate ALU.
	OpAddI  // rd = rs1 + imm
	OpMulI  // rd = rs1 * imm
	OpAndI  // rd = rs1 & imm (imm sign-extended)
	OpOrI   // rd = rs1 | imm
	OpXorI  // rd = rs1 ^ imm
	OpSllI  // rd = rs1 << (imm & 63)
	OpSrlI  // rd = rs1 >> (imm & 63) (logical)
	OpSraI  // rd = rs1 >> (imm & 63) (arithmetic)
	OpSltI  // rd = 1 if rs1 < imm (signed) else 0
	OpSltUI // rd = 1 if rs1 < imm (unsigned, imm sign-extended then treated unsigned) else 0

	// Loads: rd = mem[rs1 + imm]; sub-word loads zero- or sign-extend.
	OpLb
	OpLbU
	OpLh
	OpLhU
	OpLw
	OpLwU
	OpLd

	// Stores: mem[rs1 + imm] = rs2 (low bytes for sub-word stores).
	OpSb
	OpSh
	OpSw
	OpSd

	// Control transfer.
	OpJal  // rd = pc + 8; pc = pc + imm (direct call/jump)
	OpJalr // rd = pc + 8; pc = (rs1 + imm) & 0xffffffff (indirect)
	OpBeq  // if rs1 == rs2: pc = pc + imm
	OpBne  // if rs1 != rs2: pc = pc + imm
	OpBlt  // if rs1 <  rs2 (signed): pc = pc + imm
	OpBge  // if rs1 >= rs2 (signed): pc = pc + imm
	OpBltU // if rs1 <  rs2 (unsigned): pc = pc + imm
	OpBgeU // if rs1 >= rs2 (unsigned): pc = pc + imm

	OpSys // system call: number in a0, args in a1..a5, result in a0

	opCount // sentinel; not a real opcode
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// Conventional register assignments (ABI). These are conventions of the
// toolchain, not of the hardware: only r0 (zero) is architecturally special.
const (
	RegZero = 0 // hardwired zero
	RegRA   = 1 // return address
	RegSP   = 2 // stack pointer
	RegGP   = 3 // global pointer
	RegFP   = 4 // frame pointer
	RegA0   = 5 // first argument / return value / syscall number
	RegA1   = 6
	RegA2   = 7
	RegA3   = 8
	RegA4   = 9
	RegA5   = 10
	RegA6   = 11
	RegT0   = 12 // temporaries t0..t9 = r12..r21
	RegS0   = 22 // callee-saved s0..s9 = r22..r31
)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt", OpMovI: "movi", OpMovHI: "movhi", OpLdPC: "ldpc",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpDivU: "divu",
	OpRem: "rem", OpRemU: "remu", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltU: "sltu",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpOrI: "ori", OpXorI: "xori",
	OpSllI: "slli", OpSrlI: "srli", OpSraI: "srai", OpSltI: "slti", OpSltUI: "sltui",
	OpLb: "lb", OpLbU: "lbu", OpLh: "lh", OpLhU: "lhu", OpLw: "lw", OpLwU: "lwu", OpLd: "ld",
	OpSb: "sb", OpSh: "sh", OpSw: "sw", OpSd: "sd",
	OpJal: "jal", OpJalr: "jalr",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpBltU: "bltu", OpBgeU: "bgeu",
	OpSys: "sys",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	for o, n := range opNames {
		if n == name {
			return Op(o), true
		}
	}
	return 0, false
}

// Inst is a decoded VR64 instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode writes the 8-byte encoding of the instruction into dst.
// dst must be at least InstSize bytes long.
func (i Inst) Encode(dst []byte) {
	_ = dst[7]
	dst[0] = byte(i.Op)
	dst[1] = i.Rd
	dst[2] = i.Rs1
	dst[3] = i.Rs2
	binary.LittleEndian.PutUint32(dst[4:8], uint32(i.Imm))
}

// EncodeWord returns the instruction encoding as a single 64-bit word
// (little-endian byte order when stored to memory).
func (i Inst) EncodeWord() uint64 {
	var b [8]byte
	i.Encode(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// DecodeWord decodes an instruction from its 64-bit word form.
func DecodeWord(w uint64) (Inst, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w)
	return Decode(b[:])
}

// Decode decodes one instruction from src, validating the opcode and
// register fields. src must be at least InstSize bytes long.
func Decode(src []byte) (Inst, error) {
	if len(src) < InstSize {
		return Inst{}, fmt.Errorf("isa: short instruction: %d bytes", len(src))
	}
	i := Inst{
		Op:  Op(src[0]),
		Rd:  src[1],
		Rs1: src[2],
		Rs2: src[3],
		Imm: int32(binary.LittleEndian.Uint32(src[4:8])),
	}
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return Inst{}, fmt.Errorf("isa: register out of range in %s rd=%d rs1=%d rs2=%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
	return i, nil
}

// Syscall numbers handled by the VM's emulation unit (internal/vm).
// The number is passed in a0; arguments in a1..a5; the result replaces a0.
const (
	SysExit      = 1  // exit(code): terminate the program
	SysWrite     = 2  // write(fd, addr, len) -> bytes written
	SysRead      = 3  // read(fd, addr, len) -> bytes read
	SysBrk       = 4  // brk(addr) -> new break (addr==0 queries)
	SysCycles    = 5  // cycles() -> current virtual cycle count
	SysMark      = 6  // mark(id): record a phase marker (e.g. "GUI ready")
	SysGetPID    = 7  // getpid() -> process id
	SysSigaction = 8  // sigaction(sig, handler): expensive emulated signal setup
	SysRaise     = 9  // raise(sig): expensive emulated signal delivery
	SysInput     = 10 // input(idx) -> idx'th word of the run's input block
)

// SyscallName returns a human-readable name for a syscall number.
func SyscallName(n uint64) string {
	switch n {
	case SysExit:
		return "exit"
	case SysWrite:
		return "write"
	case SysRead:
		return "read"
	case SysBrk:
		return "brk"
	case SysCycles:
		return "cycles"
	case SysMark:
		return "mark"
	case SysGetPID:
		return "getpid"
	case SysSigaction:
		return "sigaction"
	case SysRaise:
		return "raise"
	case SysInput:
		return "input"
	}
	return fmt.Sprintf("sys(%d)", n)
}
