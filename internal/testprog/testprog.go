// Package testprog provides small helpers for building and loading guest
// programs from assembly source. It is shared by tests, benchmarks and
// examples across the repository.
package testprog

import (
	"fmt"
	"sort"

	"persistcc/internal/asm"
	"persistcc/internal/link"
	"persistcc/internal/loader"
	"persistcc/internal/obj"
)

// Build assembles and links an executable from src, linking it against one
// shared library per entry of libSrcs (key = library name, value = its
// assembly source). Library link order is the sorted key order.
func Build(name, src string, libSrcs map[string]string) (exe *obj.File, libs []*obj.File, err error) {
	var names []string
	for n := range libSrcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		o, err := asm.Assemble(n+".o", libSrcs[n])
		if err != nil {
			return nil, nil, fmt.Errorf("assemble %s: %w", n, err)
		}
		lib, err := link.Link(link.Input{Name: n, Kind: obj.KindLib, Objects: []*obj.File{o}, Libs: libs})
		if err != nil {
			return nil, nil, fmt.Errorf("link %s: %w", n, err)
		}
		libs = append(libs, lib)
	}
	o, err := asm.Assemble(name+".o", src)
	if err != nil {
		return nil, nil, fmt.Errorf("assemble %s: %w", name, err)
	}
	exe, err = link.Link(link.Input{Name: name, Kind: obj.KindExec, Objects: []*obj.File{o}, Libs: libs})
	if err != nil {
		return nil, nil, fmt.Errorf("link %s: %w", name, err)
	}
	return exe, libs, nil
}

// Resolver returns a loader resolve function over the given libraries,
// reporting mtime for every module.
func Resolver(libs []*obj.File, mtime int64) func(string) (*obj.File, int64, error) {
	return func(name string) (*obj.File, int64, error) {
		for _, l := range libs {
			if l.Name == name {
				return l, mtime, nil
			}
		}
		return nil, 0, fmt.Errorf("library %s not found", name)
	}
}

// Load loads the executable with its libraries under the given config
// (filling in the resolver).
func Load(exe *obj.File, libs []*obj.File, cfg loader.Config) (*loader.Process, error) {
	if cfg.Resolve == nil {
		cfg.Resolve = Resolver(libs, 1)
	}
	return loader.Load(exe, cfg)
}

// MustProcess builds and loads in one step, panicking on error (for
// examples and benchmarks where the source is a constant).
func MustProcess(name, src string, libSrcs map[string]string, cfg loader.Config) *loader.Process {
	exe, libs, err := Build(name, src, libSrcs)
	if err != nil {
		panic(err)
	}
	p, err := Load(exe, libs, cfg)
	if err != nil {
		panic(err)
	}
	return p
}
