package testprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenRandom emits a random but always-terminating guest program with counted
// loops, forward conditional branches, direct and indirect calls, and
// memory traffic to a scratch region. Everything is derived from the seed.
func GenRandom(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	label := 0

	emitALU := func() {
		ops := []string{"add", "sub", "mul", "xor", "and", "or", "slt", "sltu", "div", "rem"}
		fmt.Fprintf(&sb, "\t%s %s, %s, %s\n",
			ops[r.Intn(len(ops))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))])
	}
	emitMem := func() {
		slot := r.Intn(8) * 8
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "\tsd %s, %d(s2)\n", regs[r.Intn(len(regs))], slot)
		} else {
			fmt.Fprintf(&sb, "\tld %s, %d(s2)\n", regs[r.Intn(len(regs))], slot)
		}
	}
	emitFwdBranch := func() {
		l := label
		label++
		ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
		fmt.Fprintf(&sb, "\t%s %s, %s, fwd%d\n", ops[r.Intn(6)], regs[r.Intn(len(regs))], regs[r.Intn(len(regs))], l)
		for k := 0; k < 1+r.Intn(3); k++ {
			emitALU()
		}
		fmt.Fprintf(&sb, "fwd%d:\n", l)
	}

	// Leaf functions, some reachable only indirectly through a table.
	nfuncs := 2 + r.Intn(3)
	sb.WriteString(".text\n")
	for f := 0; f < nfuncs; f++ {
		fmt.Fprintf(&sb, "leaf%d:\n", f)
		for k := 0; k < 2+r.Intn(5); k++ {
			fmt.Fprintf(&sb, "\taddi a0, a0, %d\n", r.Intn(100)-50)
			if r.Intn(3) == 0 {
				fmt.Fprintf(&sb, "\txori a0, a0, %d\n", r.Intn(1<<16))
			}
		}
		sb.WriteString("\tret\n")
	}

	sb.WriteString(".global _start\n_start:\n")
	fmt.Fprintf(&sb, "\tla s2, scratch\n")
	for i, reg := range regs {
		fmt.Fprintf(&sb, "\tmovi %s, %d\n", reg, r.Int31()-1<<30+int32(i*7)+1)
	}
	sb.WriteString("\tmovi a0, 1\n")

	// Body: nested counted loops with random contents.
	nloops := 1 + r.Intn(3)
	for l := 0; l < nloops; l++ {
		counter := fmt.Sprintf("s%d", 3+l) // s3..s5 untouched by leaves
		iters := 1 + r.Intn(12)
		fmt.Fprintf(&sb, "\tmovi %s, %d\nloop%d:\n", counter, iters, l)
		stmts := 3 + r.Intn(8)
		for k := 0; k < stmts; k++ {
			switch r.Intn(5) {
			case 0:
				emitMem()
			case 1:
				emitFwdBranch()
			case 2:
				fmt.Fprintf(&sb, "\tcall leaf%d\n", r.Intn(nfuncs))
			case 3:
				// Indirect call through the function table.
				fmt.Fprintf(&sb, "\tla t6, ftab\n\tmovi t7, %d\n\tslli t7, t7, 3\n\tadd t6, t6, t7\n\tld t6, 0(t6)\n\tcallr t6\n", r.Intn(nfuncs))
			default:
				emitALU()
			}
		}
		fmt.Fprintf(&sb, "\taddi %s, %s, -1\n\tbnez %s, loop%d\n", counter, counter, counter, l)
	}

	// Fold state into the exit code.
	for _, reg := range regs {
		fmt.Fprintf(&sb, "\txor a0, a0, %s\n", reg)
	}
	sb.WriteString("\tandi a1, a0, 0xffff\n\tmovi a0, 1\n\tsys\n\thalt\n")

	sb.WriteString(".data\nftab:\n")
	for f := 0; f < nfuncs; f++ {
		fmt.Fprintf(&sb, "\t.word64 leaf%d\n", f)
	}
	sb.WriteString(".bss\n.global scratch\nscratch: .space 64\n")
	return sb.String()
}
