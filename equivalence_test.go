package persistcc_test

// Differential-equivalence suite for the translation system: every workload
// runs under each mode in equivalenceModes — cold-interpreted,
// cold-translated, cold-pipelined, warm-from-disk, store-warmed,
// server-warmed, fleet-warmed (sharded daemons, consistent-hash routing),
// pipelined (4 workers, prefetch, batched commits), and recorded-replayed
// (a recorded warm run re-executed from its replay log) — and all
// executions must agree bit for bit on the final architectural state — registers,
// memory image, output — and on every execution-behavior invariant of
// Stats. The pipeline's determinism contract is stronger still: at equal
// cache warmth it must match the synchronous dispatcher on the cache-
// behavior counters too, so a speculative install that perturbed execution
// order (or tool observation order) fails this suite immediately.
//
// Adding a mode is one table row: a name, the invariant group it joins
// (arch / translated / warm), and a run function over the shared eqCtx.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"persistcc/internal/cacheserver"
	"persistcc/internal/cacheserver/fleet"
	"persistcc/internal/core"
	"persistcc/internal/guestopt"
	"persistcc/internal/instr"
	"persistcc/internal/isa"
	"persistcc/internal/loader"
	"persistcc/internal/replay"
	"persistcc/internal/testutil"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// snap is everything one execution mode is compared on.
type snap struct {
	mode    string
	res     *vm.Result
	regs    [isa.NumRegs]uint64
	memSum  [sha256.Size]byte
	markIDs []uint64
}

func takeSnap(mode string, v *vm.VM, res *vm.Result) *snap {
	s := &snap{mode: mode, res: res}
	for r := 0; r < isa.NumRegs; r++ {
		s.regs[r] = v.Reg(uint8(r))
	}
	h := sha256.New()
	as := v.Process().AS
	var word [8]byte
	for _, m := range as.Mappings() {
		binary.LittleEndian.PutUint64(word[:], uint64(m.Base)<<32|uint64(m.Size))
		h.Write(word[:])
		buf := make([]byte, m.Size)
		if err := as.ReadBytes(m.Base, buf); err == nil {
			h.Write(buf)
		}
	}
	copy(s.memSum[:], h.Sum(nil))
	for _, mk := range res.Stats.Marks {
		s.markIDs = append(s.markIDs, mk.ID)
	}
	return s
}

// eqRow is one workload of the suite. newVM returns a fresh VM with the
// input attached and the given extra options applied; the build itself is
// cached across modes so all executions load identical binaries.
type eqRow struct {
	name  string
	tool  func() vm.Tool // fresh tool instance per mode; nil = uninstrumented
	newVM func(t *testing.T, opts ...vm.Option) *vm.VM
}

func worldRow(name, src string, libs map[string]string, input []uint64, tool func() vm.Tool) eqRow {
	var w *testutil.World
	return eqRow{
		name: name,
		tool: tool,
		newVM: func(t *testing.T, opts ...vm.Option) *vm.VM {
			if w == nil {
				w = testutil.BuildWorld(t, name, src, libs)
			}
			return w.NewVM(t, testutil.RunOpts{Input: input, Options: opts})
		},
	}
}

func genRow(name string, seed uint64, tool func() vm.Tool) eqRow {
	var prog *workload.Program
	in := workload.Input{Name: "eq", Units: []workload.Unit{{Entry: 0, Iters: 9}, {Entry: 1, Iters: 5}, {Entry: 0, Iters: 3}}}
	return eqRow{
		name: name,
		tool: tool,
		newVM: func(t *testing.T, opts ...vm.Option) *vm.VM {
			if prog == nil {
				p, err := workload.BuildProgram(workload.ProgSpec{
					Name: name, Seed: seed,
					PrivateLibs: []string{"libpriv.so"},
					Regions:     []workload.RegionSpec{{Funcs: 12, Module: 0}, {Funcs: 8, Module: 1}},
				})
				if err != nil {
					t.Fatal(err)
				}
				prog = p
			}
			v, err := prog.NewVM(loader.Config{Placement: loader.PlaceHashed}, in, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	}
}

func equivalenceRows() []eqRow {
	return []eqRow{
		worldRow("eq-loop", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{50}, nil),
		worldRow("eq-loop-bbcount", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{37}, func() vm.Tool { return &instr.BBCount{} }),
		worldRow("eq-loop-memtrace", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{23}, func() vm.Tool { return &instr.MemTrace{} }),
		genRow("eq-gen", 77, nil),
		genRow("eq-gen-opmix", 1234, func() vm.Tool { return &instr.OpcodeMix{} }),
	}
}

// eqGroup selects which invariant sets a mode participates in; each group
// includes the checks of the ones before it.
type eqGroup int

const (
	// groupArch: architectural state only — the interpreter's contract.
	groupArch eqGroup = iota
	// groupTranslated: + translated-behavior invariants (what the program
	// and its tool observed), regardless of cache warmth.
	groupTranslated
	// groupWarm: + cache-behavior counters — modes at equal warmth must
	// match the synchronous warm dispatcher event for event.
	groupWarm
	// groupOptimized: runs under the guestopt translation-time optimizer.
	// Optimized code executes fewer instructions, so these modes are held
	// to a looser contract against the interpreter (architectural state,
	// output, syscalls, marks — but not InstsExecuted) and to the full
	// translated-behavior contract against each other.
	groupOptimized
)

// eqCtx is the state one workload's modes share. Modes run in table order:
// cold-translated commits the database (mgr) and retains its VM (coldVM) as
// the cache source every warm mode reuses.
type eqCtx struct {
	t         *testing.T
	row       eqRow
	mgr       *core.Manager
	freshVM   func(extra ...vm.Option) *vm.VM
	coldVM    *vm.VM
	optVM     *vm.VM // the optimized-cold VM, cache source for optimized-warm
	adopted   uint64 // speculative adoptions observed (pipelined modes)
	optimized uint64 // traces installed in optimized form (optimized modes)
}

func (c *eqCtx) mustRun(v *vm.VM) *vm.Result {
	c.t.Helper()
	res, err := v.Run()
	if err != nil {
		c.t.Fatal(err)
	}
	return res
}

// eqMode is one execution mode — one table row.
type eqMode struct {
	name  string
	group eqGroup
	run   func(c *eqCtx) *snap
}

func equivalenceModes() []eqMode {
	return []eqMode{
		// Cold, interpreted — the reference semantics.
		{"interpreted", groupArch, func(c *eqCtx) *snap {
			v := c.freshVM()
			res, err := v.RunNative()
			if err != nil {
				c.t.Fatal(err)
			}
			return takeSnap("interpreted", v, res)
		}},
		// Cold, synchronously translated; commits the database every warm
		// mode reuses.
		{"cold-translated", groupTranslated, func(c *eqCtx) *snap {
			v := c.freshVM()
			res := c.mustRun(v)
			if _, err := c.mgr.Commit(v); err != nil {
				c.t.Fatal(err)
			}
			c.coldVM = v
			return takeSnap("cold-translated", v, res)
		}},
		// Cold, pipelined — nothing primed, so every miss goes through the
		// speculative decode/adopt path, and batched commits land in a
		// throwaway database. This is the mode that catches a speculative
		// install corrupting execution order.
		{"cold-pipelined", groupTranslated, func(c *eqCtx) *snap {
			pipe := vm.NewPipeline(4)
			defer pipe.Shutdown()
			v := c.freshVM(vm.WithPipeline(pipe))
			pipe.SetCommit(testutil.NewMgr(c.t).BatchCommitter(v))
			res := c.mustRun(v)
			c.adopted += res.Stats.SpecTranslated
			return takeSnap("cold-pipelined", v, res)
		}},
		// Warm from disk, synchronous dispatch — the warm-group reference.
		{"warm-disk", groupWarm, func(c *eqCtx) *snap {
			v := c.freshVM()
			rep, err := c.mgr.Prime(v)
			if err != nil {
				c.t.Fatal(err)
			}
			if rep.Installed == 0 {
				c.t.Fatal("warm mode installed nothing; equivalence would be vacuous")
			}
			return takeSnap("warm-disk", v, c.mustRun(v))
		}},
		// Warm from the content-addressed store — the cold run's entry is
		// committed through a store-format manager (manifest + shared
		// blobs) and primed back. The store round trip must be invisible.
		{"store-warmed", groupWarm, func(c *eqCtx) *snap {
			smgr := testutil.NewMgr(c.t, core.WithStore())
			if _, err := smgr.Commit(c.coldVM); err != nil {
				c.t.Fatal(err)
			}
			v := c.freshVM()
			rep, err := smgr.Prime(v)
			if err != nil {
				c.t.Fatal(err)
			}
			if rep.Installed == 0 {
				c.t.Fatal("store-warm mode installed nothing; equivalence would be vacuous")
			}
			return takeSnap("store-warmed", v, c.mustRun(v))
		}},
		// Server-warmed — the cache arrives over the wire and installs
		// through the fallback's validation path.
		{"server-warmed", groupWarm, func(c *eqCtx) *snap {
			return serverSnap(c.t, c.freshVM, c.coldVM)
		}},
		// Fleet-warmed — the cache arrives through a sharded fleet with
		// consistent-hash routing and replication. Routing must be
		// invisible: identical state and counters to every other warm mode.
		{"fleet-warmed", groupWarm, func(c *eqCtx) *snap {
			return fleetSnap(c.t, c.freshVM, c.coldVM)
		}},
		// Pipelined — prefetch bulk install, speculative workers, batched
		// commits, against the same database.
		{"pipelined", groupWarm, func(c *eqCtx) *snap {
			pipe := vm.NewPipeline(4, vm.PipelinePrefetch())
			defer pipe.Shutdown()
			v := c.freshVM(vm.WithPipeline(pipe))
			pipe.SetCommit(c.mgr.BatchCommitter(v))
			rep, err := c.mgr.Prime(v)
			if err != nil {
				c.t.Fatal(err)
			}
			res := c.mustRun(v)
			if res.Stats.PrefetchInstalls != uint64(rep.Installed) {
				c.t.Errorf("prefetch installed %d of %d primed traces", res.Stats.PrefetchInstalls, rep.Installed)
			}
			c.adopted += res.Stats.SpecTranslated
			return takeSnap("pipelined", v, res)
		}},
		// Recorded-replayed — a warm run is recorded through the VM
		// boundary, then re-executed from its log: every boundary value
		// pinned, final state verified bit-exactly by the replayer itself,
		// and the replayed snapshot held to the warm group's invariants.
		{"recorded-replayed", groupWarm, recordedReplayedSnap},
		// Optimized, cold — every trace goes through the guestopt passes
		// and equivalence checker before install; commits to the shared
		// database under the optimizer's distinct VM key.
		{"optimized-cold", groupOptimized, func(c *eqCtx) *snap {
			v := c.freshVM(vm.WithOptimizer(guestopt.New(guestopt.All())))
			res := c.mustRun(v)
			if res.Stats.OptRejects != 0 {
				c.t.Errorf("optimized-cold: checker rejected %d engine rewrites", res.Stats.OptRejects)
			}
			c.optimized += res.Stats.TracesOptimized
			if _, err := c.mgr.Commit(v); err != nil {
				c.t.Fatal(err)
			}
			c.optVM = v
			return takeSnap("optimized-cold", v, res)
		}},
		// Optimized, warm through the content-addressed store — the
		// optimized traces round-trip as PCB2 blobs and prime back
		// pre-optimized: the warm run must not re-run the passes.
		{"optimized-warm", groupOptimized, func(c *eqCtx) *snap {
			smgr := testutil.NewMgr(c.t, core.WithStore())
			if _, err := smgr.Commit(c.optVM); err != nil {
				c.t.Fatal(err)
			}
			v := c.freshVM(vm.WithOptimizer(guestopt.New(guestopt.All())))
			rep, err := smgr.Prime(v)
			if err != nil {
				c.t.Fatal(err)
			}
			if rep.Installed == 0 {
				c.t.Fatal("optimized-warm mode installed nothing; equivalence would be vacuous")
			}
			res := c.mustRun(v)
			if res.Stats.TracesOptimized != 0 {
				c.t.Errorf("optimized-warm: re-optimized %d persisted traces", res.Stats.TracesOptimized)
			}
			return takeSnap("optimized-warm", v, res)
		}},
	}
}

func TestDifferentialEquivalence(t *testing.T) {
	var adoptedTotal, optimizedTotal uint64
	for _, row := range equivalenceRows() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			c := &eqCtx{t: t, row: row, mgr: testutil.NewMgr(t)}
			c.freshVM = func(extra ...vm.Option) *vm.VM {
				if row.tool != nil {
					extra = append([]vm.Option{vm.WithTool(row.tool())}, extra...)
				}
				return row.newVM(t, extra...)
			}
			var all, translated, warm, optimized []*snap
			for _, m := range equivalenceModes() {
				s := m.run(c)
				if m.group == groupOptimized {
					optimized = append(optimized, s)
					continue
				}
				all = append(all, s)
				if m.group >= groupTranslated {
					translated = append(translated, s)
				}
				if m.group >= groupWarm {
					warm = append(warm, s)
				}
			}
			checkArchitectural(t, all)
			checkBehavior(t, translated)
			checkCacheBehavior(t, warm)
			// Optimized modes: loose architectural agreement with the
			// interpreter, full architectural + behavior agreement with
			// each other (both execute the same optimized code).
			checkArchLoose(t, all[0], optimized)
			checkArchitectural(t, optimized)
			checkBehavior(t, optimized)
			adoptedTotal += c.adopted
			optimizedTotal += c.optimized
		})
	}
	if adoptedTotal == 0 {
		t.Error("no speculative translation was adopted in any workload; the pipelined modes never exercised the speculative-install path")
	}
	if optimizedTotal == 0 {
		t.Error("no trace was installed in optimized form in any workload; the optimized modes never exercised the optimizer")
	}
}

// recordedReplayedSnap implements the ninth mode: record one warm run, then
// replay the log against an identically built VM primed from the same
// database (equal warmth, so cache-behavior counters must match too). The
// replayer verifies the run bit-exactly against the recording; the returned
// snapshot is the replayed execution's, so the suite also holds it to every
// cross-mode invariant.
func recordedReplayedSnap(c *eqCtx) *snap {
	t := c.t
	t.Helper()
	logPath := filepath.Join(t.TempDir(), "run.rec")
	rec, err := replay.NewRecorder(nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	vR := c.freshVM(vm.WithBoundary(rec))
	if err := rec.Start(replay.StartInfo{Program: c.row.name, PID: 1, Proc: vR.Process()}); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.mgr.Prime(vR); err != nil {
		t.Fatal(err)
	} else if rep.Installed == 0 {
		t.Fatal("recorded run installed nothing; equivalence would be vacuous")
	}
	resR := c.mustRun(vR)
	if err := rec.Finish(vR, resR); err != nil {
		t.Fatal(err)
	}

	rp, err := replay.Open(nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	v := c.freshVM(vm.WithBoundary(rp), vm.WithPID(rp.PID()))
	if err := rp.VerifyLayout(v.Process()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.mgr.Prime(v); err != nil {
		t.Fatal(err)
	}
	res := c.mustRun(v)
	if err := rp.Finish(v, res); err != nil {
		t.Fatalf("replay diverged from its own recording: %v", err)
	}
	return takeSnap("recorded-replayed", v, res)
}

// serverSnap runs the server-warmed mode: an in-process daemon is seeded
// with the cold run's cache file, and the run primes through a Fallback
// whose local database is empty — every installed trace travelled the wire.
func serverSnap(t *testing.T, freshVM func(...vm.Option) *vm.VM, committed *vm.VM) *snap {
	t.Helper()
	smgr, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cacheserver.New(smgr)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := cacheserver.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	client := cacheserver.NewClient(ln.Addr().String(),
		cacheserver.WithRetry(1, time.Millisecond), cacheserver.WithDialTimeout(time.Second))
	t.Cleanup(func() { client.Close() })
	cf, _ := core.BuildCacheFile(committed)
	if _, err := client.Publish(cf); err != nil {
		t.Fatal(err)
	}

	local, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	fb := cacheserver.NewFallback(client, local)
	v := freshVM()
	rep, err := fb.Prime(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Installed == 0 || v.Stats().RemoteHits == 0 {
		t.Fatalf("server mode installed nothing remotely: %+v", rep)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return takeSnap("server-warmed", v, res)
}

// fleetSnap runs the fleet-warmed mode: a two-shard in-process fleet is
// seeded with the cold run's cache file through the routing client (so the
// entry lands on its consistent-hash owners, replicated), and the run
// primes through a Fallback whose local database is empty — the installed
// traces travelled the wire via whichever shard the ring picked.
func fleetSnap(t *testing.T, freshVM func(...vm.Option) *vm.VM, committed *vm.VM) *snap {
	t.Helper()
	var cfg fleet.Config
	for i := 0; i < 2; i++ {
		smgr, err := core.NewManager(testutil.TempDB(t))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := cacheserver.New(smgr)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := cacheserver.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		cfg.Shards = append(cfg.Shards, fleet.Shard{ID: fmt.Sprintf("eq%d", i), Addr: ln.Addr().String()})
	}
	fl, err := fleet.New(&cfg, fleet.WithShardOptions(
		cacheserver.WithRetry(1, time.Millisecond), cacheserver.WithDialTimeout(time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	cf, _ := core.BuildCacheFile(committed)
	if _, err := fl.Publish(cf); err != nil {
		t.Fatal(err)
	}

	local, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	fb := cacheserver.NewFallback(fl, local)
	v := freshVM()
	rep, err := fb.Prime(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Installed == 0 || v.Stats().RemoteHits == 0 {
		t.Fatalf("fleet mode installed nothing remotely: %+v", rep)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return takeSnap("fleet-warmed", v, res)
}

// checkArchitectural asserts the invariants every mode — including the
// interpreter — must agree on: final architectural state and the
// execution-behavior facts of the program itself.
func checkArchitectural(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		if s.res.ExitCode != ref.res.ExitCode {
			t.Errorf("%s: exit %d, %s has %d", s.mode, s.res.ExitCode, ref.mode, ref.res.ExitCode)
		}
		if !reflect.DeepEqual(s.res.Output, ref.res.Output) {
			t.Errorf("%s: output differs from %s (%d vs %d bytes)", s.mode, ref.mode, len(s.res.Output), len(ref.res.Output))
		}
		if s.regs != ref.regs {
			t.Errorf("%s: final registers differ from %s", s.mode, ref.mode)
		}
		if s.memSum != ref.memSum {
			t.Errorf("%s: final memory image differs from %s", s.mode, ref.mode)
		}
		if s.res.Stats.InstsExecuted != ref.res.Stats.InstsExecuted {
			t.Errorf("%s: executed %d insts, %s executed %d", s.mode, s.res.Stats.InstsExecuted, ref.mode, ref.res.Stats.InstsExecuted)
		}
		if !reflect.DeepEqual(s.res.Stats.Syscalls, ref.res.Stats.Syscalls) {
			t.Errorf("%s: syscall profile differs from %s", s.mode, ref.mode)
		}
		if !reflect.DeepEqual(s.markIDs, ref.markIDs) {
			t.Errorf("%s: mark sequence %v differs from %s %v", s.mode, s.markIDs, ref.mode, ref.markIDs)
		}
	}
}

// checkArchLoose holds optimized modes to the interpreter's observable
// contract — everything in checkArchitectural except InstsExecuted, which
// optimization legitimately reduces.
func checkArchLoose(t *testing.T, ref *snap, snaps []*snap) {
	t.Helper()
	for _, s := range snaps {
		if s.res.ExitCode != ref.res.ExitCode {
			t.Errorf("%s: exit %d, %s has %d", s.mode, s.res.ExitCode, ref.mode, ref.res.ExitCode)
		}
		if !reflect.DeepEqual(s.res.Output, ref.res.Output) {
			t.Errorf("%s: output differs from %s (%d vs %d bytes)", s.mode, ref.mode, len(s.res.Output), len(ref.res.Output))
		}
		if s.regs != ref.regs {
			t.Errorf("%s: final registers differ from %s", s.mode, ref.mode)
		}
		if s.memSum != ref.memSum {
			t.Errorf("%s: final memory image differs from %s", s.mode, ref.mode)
		}
		if s.res.Stats.InstsExecuted > ref.res.Stats.InstsExecuted {
			t.Errorf("%s: executed %d insts, more than %s's %d", s.mode, s.res.Stats.InstsExecuted, ref.mode, ref.res.Stats.InstsExecuted)
		}
		if !reflect.DeepEqual(s.res.Stats.Syscalls, ref.res.Stats.Syscalls) {
			t.Errorf("%s: syscall profile differs from %s", s.mode, ref.mode)
		}
		if !reflect.DeepEqual(s.markIDs, ref.markIDs) {
			t.Errorf("%s: mark sequence %v differs from %s %v", s.mode, s.markIDs, ref.mode, ref.markIDs)
		}
	}
}

// checkBehavior asserts the invariants shared by every translated mode
// regardless of cache warmth: what the program (and its tool) observed.
func checkBehavior(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		rs, ss := &ref.res.Stats, &s.res.Stats
		if ss.TraceExecs != rs.TraceExecs {
			t.Errorf("%s: %d trace execs, %s has %d", s.mode, ss.TraceExecs, ref.mode, rs.TraceExecs)
		}
		if !reflect.DeepEqual(ss.Counters, rs.Counters) {
			t.Errorf("%s: tool counters differ from %s", s.mode, ref.mode)
		}
		if ss.MemRefs != rs.MemRefs || ss.MemRefHash != rs.MemRefHash {
			t.Errorf("%s: memory-trace profile differs from %s", s.mode, ref.mode)
		}
		if ss.OpcodeMix != rs.OpcodeMix {
			t.Errorf("%s: opcode mix differs from %s", s.mode, ref.mode)
		}
	}
}

// checkCacheBehavior asserts the pipeline determinism contract: at equal
// warmth, speculative installs and bulk prefetch must leave the cache-
// behavior counters exactly where the synchronous dispatcher leaves them.
func checkCacheBehavior(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		rs, ss := &ref.res.Stats, &s.res.Stats
		if ss.TracesTranslated != rs.TracesTranslated || ss.InstsTranslated != rs.InstsTranslated {
			t.Errorf("%s: translated %d traces/%d insts, %s has %d/%d",
				s.mode, ss.TracesTranslated, ss.InstsTranslated, ref.mode, rs.TracesTranslated, rs.InstsTranslated)
		}
		if ss.TracesReused != rs.TracesReused {
			t.Errorf("%s: reused %d traces, %s has %d", s.mode, ss.TracesReused, ref.mode, rs.TracesReused)
		}
		if ss.Dispatches != rs.Dispatches {
			t.Errorf("%s: %d dispatches, %s has %d", s.mode, ss.Dispatches, ref.mode, rs.Dispatches)
		}
		if ss.IndirectHits != rs.IndirectHits || ss.IndirectMisses != rs.IndirectMisses {
			t.Errorf("%s: indirect %d/%d, %s has %d/%d",
				s.mode, ss.IndirectHits, ss.IndirectMisses, ref.mode, rs.IndirectHits, rs.IndirectMisses)
		}
		if ss.LinksPatched != rs.LinksPatched {
			t.Errorf("%s: %d links patched, %s has %d", s.mode, ss.LinksPatched, ref.mode, rs.LinksPatched)
		}
		if ss.Flushes != rs.Flushes {
			t.Errorf("%s: %d flushes, %s has %d", s.mode, ss.Flushes, ref.mode, rs.Flushes)
		}
	}
}

var _ = errors.Is // keep errors imported if assertions above change
