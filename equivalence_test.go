package persistcc_test

// Differential-equivalence suite for the translation system: every workload
// runs cold-interpreted, cold-translated, warm-from-disk, store-warmed,
// server-warmed, fleet-warmed (sharded daemons, consistent-hash routing)
// and pipelined (4 workers, prefetch, batched commits), and all
// executions must agree bit for bit on the final architectural state — registers,
// memory image, output — and on every execution-behavior invariant of
// Stats. The pipeline's determinism contract is stronger still: at equal
// cache warmth it must match the synchronous dispatcher on the cache-
// behavior counters too, so a speculative install that perturbed execution
// order (or tool observation order) fails this suite immediately.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"persistcc/internal/cacheserver"
	"persistcc/internal/cacheserver/fleet"
	"persistcc/internal/core"
	"persistcc/internal/instr"
	"persistcc/internal/isa"
	"persistcc/internal/loader"
	"persistcc/internal/testutil"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

// snap is everything one execution mode is compared on.
type snap struct {
	mode    string
	res     *vm.Result
	regs    [isa.NumRegs]uint64
	memSum  [sha256.Size]byte
	markIDs []uint64
}

func takeSnap(mode string, v *vm.VM, res *vm.Result) *snap {
	s := &snap{mode: mode, res: res}
	for r := 0; r < isa.NumRegs; r++ {
		s.regs[r] = v.Reg(uint8(r))
	}
	h := sha256.New()
	as := v.Process().AS
	var word [8]byte
	for _, m := range as.Mappings() {
		binary.LittleEndian.PutUint64(word[:], uint64(m.Base)<<32|uint64(m.Size))
		h.Write(word[:])
		buf := make([]byte, m.Size)
		if err := as.ReadBytes(m.Base, buf); err == nil {
			h.Write(buf)
		}
	}
	copy(s.memSum[:], h.Sum(nil))
	for _, mk := range res.Stats.Marks {
		s.markIDs = append(s.markIDs, mk.ID)
	}
	return s
}

// eqRow is one workload of the suite. newVM returns a fresh VM with the
// input attached and the given extra options applied; the build itself is
// cached across modes so all executions load identical binaries.
type eqRow struct {
	name  string
	tool  func() vm.Tool // fresh tool instance per mode; nil = uninstrumented
	newVM func(t *testing.T, opts ...vm.Option) *vm.VM
}

func worldRow(name, src string, libs map[string]string, input []uint64, tool func() vm.Tool) eqRow {
	var w *testutil.World
	return eqRow{
		name: name,
		tool: tool,
		newVM: func(t *testing.T, opts ...vm.Option) *vm.VM {
			if w == nil {
				w = testutil.BuildWorld(t, name, src, libs)
			}
			return w.NewVM(t, testutil.RunOpts{Input: input, Options: opts})
		},
	}
}

func genRow(name string, seed uint64, tool func() vm.Tool) eqRow {
	var prog *workload.Program
	in := workload.Input{Name: "eq", Units: []workload.Unit{{Entry: 0, Iters: 9}, {Entry: 1, Iters: 5}, {Entry: 0, Iters: 3}}}
	return eqRow{
		name: name,
		tool: tool,
		newVM: func(t *testing.T, opts ...vm.Option) *vm.VM {
			if prog == nil {
				p, err := workload.BuildProgram(workload.ProgSpec{
					Name: name, Seed: seed,
					PrivateLibs: []string{"libpriv.so"},
					Regions:     []workload.RegionSpec{{Funcs: 12, Module: 0}, {Funcs: 8, Module: 1}},
				})
				if err != nil {
					t.Fatal(err)
				}
				prog = p
			}
			v, err := prog.NewVM(loader.Config{Placement: loader.PlaceHashed}, in, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
	}
}

func equivalenceRows() []eqRow {
	return []eqRow{
		worldRow("eq-loop", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{50}, nil),
		worldRow("eq-loop-bbcount", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{37}, func() vm.Tool { return &instr.BBCount{} }),
		worldRow("eq-loop-memtrace", testutil.MainSrc, map[string]string{"libwork.so": testutil.LibWork},
			[]uint64{23}, func() vm.Tool { return &instr.MemTrace{} }),
		genRow("eq-gen", 77, nil),
		genRow("eq-gen-opmix", 1234, func() vm.Tool { return &instr.OpcodeMix{} }),
	}
}

func TestDifferentialEquivalence(t *testing.T) {
	var adoptedTotal uint64
	for _, row := range equivalenceRows() {
		row := row
		t.Run(row.name, func(t *testing.T) {
			mgr := testutil.NewMgr(t)
			freshVM := func(extra ...vm.Option) *vm.VM {
				if row.tool != nil {
					extra = append([]vm.Option{vm.WithTool(row.tool())}, extra...)
				}
				return row.newVM(t, extra...)
			}

			// Mode 1: cold, interpreted — the reference semantics.
			vI := freshVM()
			resI, err := vI.RunNative()
			if err != nil {
				t.Fatal(err)
			}
			interp := takeSnap("interpreted", vI, resI)

			// Mode 2: cold, synchronously translated; commits the database
			// every warm mode reuses.
			vC := freshVM()
			resC, err := vC.Run()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mgr.Commit(vC); err != nil {
				t.Fatal(err)
			}
			cold := takeSnap("cold-translated", vC, resC)

			// Mode 2b: cold, pipelined — nothing primed, so every miss goes
			// through the speculative decode/adopt path, and batched commits
			// land in a throwaway database. This is the mode that catches a
			// speculative install corrupting execution order.
			pipeC := vm.NewPipeline(4)
			defer pipeC.Shutdown()
			vPC := freshVM(vm.WithPipeline(pipeC))
			pipeC.SetCommit(testutil.NewMgr(t).BatchCommitter(vPC))
			resPC, err := vPC.Run()
			if err != nil {
				t.Fatal(err)
			}
			coldPiped := takeSnap("cold-pipelined", vPC, resPC)
			adoptedTotal += resPC.Stats.SpecTranslated

			// Mode 3: warm from disk, synchronous dispatch.
			vW := freshVM()
			wrep, err := mgr.Prime(vW)
			if err != nil {
				t.Fatal(err)
			}
			if wrep.Installed == 0 {
				t.Fatal("warm mode installed nothing; equivalence would be vacuous")
			}
			resW, err := vW.Run()
			if err != nil {
				t.Fatal(err)
			}
			warm := takeSnap("warm-disk", vW, resW)

			// Mode 3b: warm from the content-addressed store — the cold
			// run's entry is committed through a store-format manager
			// (manifest + shared blobs) and primed back. The store round
			// trip must be invisible: bit-identical architectural state
			// AND identical cache-behavior counters.
			smgr := testutil.NewMgr(t, core.WithStore())
			if _, err := smgr.Commit(vC); err != nil {
				t.Fatal(err)
			}
			vS := freshVM()
			srep, err := smgr.Prime(vS)
			if err != nil {
				t.Fatal(err)
			}
			if srep.Installed == 0 {
				t.Fatal("store-warm mode installed nothing; equivalence would be vacuous")
			}
			resS, err := vS.Run()
			if err != nil {
				t.Fatal(err)
			}
			storeWarm := takeSnap("store-warmed", vS, resS)

			// Mode 4: server-warmed — the cache arrives over the wire and
			// installs through the fallback's validation path.
			server := serverSnap(t, row, freshVM, vC)

			// Mode 4b: fleet-warmed — the cache arrives through a sharded
			// fleet with consistent-hash routing and replication. Routing
			// must be invisible: bit-identical architectural state AND
			// identical cache-behavior counters to every other warm mode.
			fleetWarm := fleetSnap(t, row, freshVM, vC)

			// Mode 5: pipelined — prefetch bulk install, speculative
			// workers, batched commits, against the same database.
			pipe := vm.NewPipeline(4, vm.PipelinePrefetch())
			defer pipe.Shutdown()
			vP := freshVM(vm.WithPipeline(pipe))
			pipe.SetCommit(mgr.BatchCommitter(vP))
			prep, err := mgr.Prime(vP)
			if err != nil {
				t.Fatal(err)
			}
			resP, err := vP.Run()
			if err != nil {
				t.Fatal(err)
			}
			piped := takeSnap("pipelined", vP, resP)
			if resP.Stats.PrefetchInstalls != uint64(prep.Installed) {
				t.Errorf("prefetch installed %d of %d primed traces", resP.Stats.PrefetchInstalls, prep.Installed)
			}

			all := []*snap{interp, cold, coldPiped, warm, storeWarm, server, fleetWarm, piped}
			translated := all[1:]
			warmQuint := []*snap{warm, storeWarm, server, fleetWarm, piped}
			checkArchitectural(t, all)
			checkBehavior(t, translated)
			checkCacheBehavior(t, warmQuint)
		})
	}
	if adoptedTotal == 0 {
		t.Error("no speculative translation was adopted in any workload; the pipelined modes never exercised the speculative-install path")
	}
}

// serverSnap runs the server-warmed mode: an in-process daemon is seeded
// with the cold run's cache file, and the run primes through a Fallback
// whose local database is empty — every installed trace travelled the wire.
func serverSnap(t *testing.T, row eqRow, freshVM func(...vm.Option) *vm.VM, committed *vm.VM) *snap {
	t.Helper()
	smgr, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cacheserver.New(smgr)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := cacheserver.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	client := cacheserver.NewClient(ln.Addr().String(),
		cacheserver.WithRetry(1, time.Millisecond), cacheserver.WithDialTimeout(time.Second))
	t.Cleanup(func() { client.Close() })
	cf, _ := core.BuildCacheFile(committed)
	if _, err := client.Publish(cf); err != nil {
		t.Fatal(err)
	}

	local, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	fb := cacheserver.NewFallback(client, local)
	v := freshVM()
	rep, err := fb.Prime(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Installed == 0 || v.Stats().RemoteHits == 0 {
		t.Fatalf("server mode installed nothing remotely: %+v", rep)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return takeSnap("server-warmed", v, res)
}

// fleetSnap runs the fleet-warmed mode: a two-shard in-process fleet is
// seeded with the cold run's cache file through the routing client (so the
// entry lands on its consistent-hash owners, replicated), and the run
// primes through a Fallback whose local database is empty — the installed
// traces travelled the wire via whichever shard the ring picked.
func fleetSnap(t *testing.T, row eqRow, freshVM func(...vm.Option) *vm.VM, committed *vm.VM) *snap {
	t.Helper()
	var cfg fleet.Config
	for i := 0; i < 2; i++ {
		smgr, err := core.NewManager(testutil.TempDB(t))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := cacheserver.New(smgr)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := cacheserver.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		cfg.Shards = append(cfg.Shards, fleet.Shard{ID: fmt.Sprintf("eq%d", i), Addr: ln.Addr().String()})
	}
	fl, err := fleet.New(&cfg, fleet.WithShardOptions(
		cacheserver.WithRetry(1, time.Millisecond), cacheserver.WithDialTimeout(time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	cf, _ := core.BuildCacheFile(committed)
	if _, err := fl.Publish(cf); err != nil {
		t.Fatal(err)
	}

	local, err := core.NewManager(testutil.TempDB(t))
	if err != nil {
		t.Fatal(err)
	}
	fb := cacheserver.NewFallback(fl, local)
	v := freshVM()
	rep, err := fb.Prime(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Installed == 0 || v.Stats().RemoteHits == 0 {
		t.Fatalf("fleet mode installed nothing remotely: %+v", rep)
	}
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return takeSnap("fleet-warmed", v, res)
}

// checkArchitectural asserts the invariants every mode — including the
// interpreter — must agree on: final architectural state and the
// execution-behavior facts of the program itself.
func checkArchitectural(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		if s.res.ExitCode != ref.res.ExitCode {
			t.Errorf("%s: exit %d, %s has %d", s.mode, s.res.ExitCode, ref.mode, ref.res.ExitCode)
		}
		if !reflect.DeepEqual(s.res.Output, ref.res.Output) {
			t.Errorf("%s: output differs from %s (%d vs %d bytes)", s.mode, ref.mode, len(s.res.Output), len(ref.res.Output))
		}
		if s.regs != ref.regs {
			t.Errorf("%s: final registers differ from %s", s.mode, ref.mode)
		}
		if s.memSum != ref.memSum {
			t.Errorf("%s: final memory image differs from %s", s.mode, ref.mode)
		}
		if s.res.Stats.InstsExecuted != ref.res.Stats.InstsExecuted {
			t.Errorf("%s: executed %d insts, %s executed %d", s.mode, s.res.Stats.InstsExecuted, ref.mode, ref.res.Stats.InstsExecuted)
		}
		if !reflect.DeepEqual(s.res.Stats.Syscalls, ref.res.Stats.Syscalls) {
			t.Errorf("%s: syscall profile differs from %s", s.mode, ref.mode)
		}
		if !reflect.DeepEqual(s.markIDs, ref.markIDs) {
			t.Errorf("%s: mark sequence %v differs from %s %v", s.mode, s.markIDs, ref.mode, ref.markIDs)
		}
	}
}

// checkBehavior asserts the invariants shared by every translated mode
// regardless of cache warmth: what the program (and its tool) observed.
func checkBehavior(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		rs, ss := &ref.res.Stats, &s.res.Stats
		if ss.TraceExecs != rs.TraceExecs {
			t.Errorf("%s: %d trace execs, %s has %d", s.mode, ss.TraceExecs, ref.mode, rs.TraceExecs)
		}
		if !reflect.DeepEqual(ss.Counters, rs.Counters) {
			t.Errorf("%s: tool counters differ from %s", s.mode, ref.mode)
		}
		if ss.MemRefs != rs.MemRefs || ss.MemRefHash != rs.MemRefHash {
			t.Errorf("%s: memory-trace profile differs from %s", s.mode, ref.mode)
		}
		if ss.OpcodeMix != rs.OpcodeMix {
			t.Errorf("%s: opcode mix differs from %s", s.mode, ref.mode)
		}
	}
}

// checkCacheBehavior asserts the pipeline determinism contract: at equal
// warmth, speculative installs and bulk prefetch must leave the cache-
// behavior counters exactly where the synchronous dispatcher leaves them.
func checkCacheBehavior(t *testing.T, snaps []*snap) {
	t.Helper()
	ref := snaps[0]
	for _, s := range snaps[1:] {
		rs, ss := &ref.res.Stats, &s.res.Stats
		if ss.TracesTranslated != rs.TracesTranslated || ss.InstsTranslated != rs.InstsTranslated {
			t.Errorf("%s: translated %d traces/%d insts, %s has %d/%d",
				s.mode, ss.TracesTranslated, ss.InstsTranslated, ref.mode, rs.TracesTranslated, rs.InstsTranslated)
		}
		if ss.TracesReused != rs.TracesReused {
			t.Errorf("%s: reused %d traces, %s has %d", s.mode, ss.TracesReused, ref.mode, rs.TracesReused)
		}
		if ss.Dispatches != rs.Dispatches {
			t.Errorf("%s: %d dispatches, %s has %d", s.mode, ss.Dispatches, ref.mode, rs.Dispatches)
		}
		if ss.IndirectHits != rs.IndirectHits || ss.IndirectMisses != rs.IndirectMisses {
			t.Errorf("%s: indirect %d/%d, %s has %d/%d",
				s.mode, ss.IndirectHits, ss.IndirectMisses, ref.mode, rs.IndirectHits, rs.IndirectMisses)
		}
		if ss.LinksPatched != rs.LinksPatched {
			t.Errorf("%s: %d links patched, %s has %d", s.mode, ss.LinksPatched, ref.mode, rs.LinksPatched)
		}
		if ss.Flushes != rs.Flushes {
			t.Errorf("%s: %d flushes, %s has %d", s.mode, ss.Flushes, ref.mode, rs.Flushes)
		}
	}
}

var _ = errors.Is // keep errors imported if assertions above change
