package persistcc_test

// TestCrasherCorpus replays every artifact in crashers/: the regression
// corpus of self-packaged failures (see crashers/README.md). Each JSON file
// rebuilds its workload — from a generated-workload spec or from literal
// assembly sources — and must (a) run identically interpreted and
// translated, (b) match its recorded expectations, and (c) when a .rec
// sidecar is present, re-execute bit-exactly through the replayer, primed
// from the bundled cache-DB snapshot so the cache-behavior counters
// reproduce too.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"persistcc/internal/core"
	"persistcc/internal/isa"
	"persistcc/internal/loader"
	"persistcc/internal/replay"
	"persistcc/internal/testutil"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

func TestCrasherCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("crashers", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("crasher corpus is empty: crashers/*.json matched nothing")
	}
	regen := os.Getenv("PCC_REGEN_CRASHERS") != ""
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) { runCrasher(t, path, regen) })
	}
}

// crasherVM builds a fresh VM for the artifact's workload under the given
// ASLR seed (the warm and diverging runs of a relocation-edge case differ
// only in seed).
func crasherVM(t *testing.T, c *replay.Crasher, seed uint64, opts ...vm.Option) *vm.VM {
	t.Helper()
	if c.SMC {
		opts = append([]vm.Option{vm.WithSMCDetection()}, opts...)
	}
	cfg := loader.Config{Placement: loader.Placement(c.Placement), ASLRSeed: seed}
	if len(c.Spec) > 0 {
		var spec workload.ProgSpec
		var in workload.Input
		if err := json.Unmarshal(c.Spec, &spec); err != nil {
			t.Fatalf("crasher spec: %v", err)
		}
		if err := json.Unmarshal(c.Units, &in); err != nil {
			t.Fatalf("crasher units: %v", err)
		}
		prog, err := workload.BuildProgram(spec)
		if err != nil {
			t.Fatalf("crasher spec build: %v", err)
		}
		v, err := prog.NewVM(cfg, in, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	w := testutil.BuildWorld(t, c.Name, c.Main, c.Libs)
	return w.NewVM(t, testutil.RunOpts{Input: c.Input, Cfg: cfg, Options: opts})
}

// crasherInput returns the input words the artifact's runs consume.
func crasherInput(t *testing.T, c *replay.Crasher) []uint64 {
	t.Helper()
	if len(c.Spec) == 0 {
		return c.Input
	}
	var in workload.Input
	if err := json.Unmarshal(c.Units, &in); err != nil {
		t.Fatalf("crasher units: %v", err)
	}
	return in.Words()
}

func runCrasher(t *testing.T, path string, regen bool) {
	var c *replay.Crasher
	var recData []byte
	if regen {
		// Sidecars may not exist yet; read the JSON alone, rebuild them,
		// then reload the complete artifact.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c = &replay.Crasher{}
		if err := json.Unmarshal(data, c); err != nil {
			t.Fatal(err)
		}
		if c.Recording != "" || c.Snapshot != "" {
			regenSidecars(t, path, c)
		}
	}
	var err error
	c, recData, err = replay.LoadCrasher(nil, path)
	if err != nil {
		t.Fatal(err)
	}

	// Relocation-edge shape: populate a database from a run placed under
	// the warm seed; the diverging run below primes from it at another.
	var mgr *core.Manager
	if c.WarmASLRSeed != 0 {
		mgr = newCrasherMgr(t, c)
		vw := crasherVM(t, c, c.WarmASLRSeed)
		if _, err := vw.Run(); err != nil {
			t.Fatalf("warm run: %v", err)
		}
		if _, err := mgr.Commit(vw); err != nil {
			t.Fatalf("warm commit: %v", err)
		}
	}

	// Interpreted reference.
	vN := crasherVM(t, c, c.ASLRSeed)
	native, err := vN.RunNative()
	if err != nil {
		t.Fatalf("interpreted: %v", err)
	}

	// Translated run (warmed when the case demands it).
	vT := crasherVM(t, c, c.ASLRSeed)
	if mgr != nil {
		rep, err := mgr.Prime(vT)
		if err != nil {
			t.Fatalf("prime: %v", err)
		}
		if rep.Installed == 0 {
			t.Fatal("relocation case primed nothing; the regression would be vacuous")
		}
	}
	trans, err := vT.Run()
	if err != nil {
		t.Fatalf("translated: %v", err)
	}

	if trans.ExitCode != native.ExitCode {
		t.Errorf("exit: translated %d, interpreted %d", trans.ExitCode, native.ExitCode)
	}
	if !bytes.Equal(trans.Output, native.Output) {
		t.Errorf("output: translated %d bytes, interpreted %d bytes", len(trans.Output), len(native.Output))
	}
	if trans.Stats.InstsExecuted != native.Stats.InstsExecuted {
		t.Errorf("insts: translated %d, interpreted %d", trans.Stats.InstsExecuted, native.Stats.InstsExecuted)
	}
	for r := uint8(0); r < isa.NumRegs; r++ {
		if vT.Reg(r) != vN.Reg(r) {
			t.Errorf("r%d: translated %#x, interpreted %#x", r, vT.Reg(r), vN.Reg(r))
		}
	}
	if c.Expect != nil {
		if trans.ExitCode != c.Expect.Exit {
			t.Errorf("exit %d, artifact expects %d", trans.ExitCode, c.Expect.Exit)
		}
		if c.Expect.Insts != 0 && trans.Stats.InstsExecuted != c.Expect.Insts {
			t.Errorf("insts %d, artifact expects %d", trans.Stats.InstsExecuted, c.Expect.Insts)
		}
		if c.Expect.Output != "" && string(trans.Output) != c.Expect.Output {
			t.Errorf("output %q, artifact expects %q", trans.Output, c.Expect.Output)
		}
	}

	// Bit-exact re-execution of the bundled recording.
	if len(recData) > 0 {
		rp, err := replay.NewReplayer(recData)
		if err != nil {
			t.Fatalf("recording: %v", err)
		}
		v := crasherVM(t, c, rp.Seed(), vm.WithBoundary(rp), vm.WithPID(rp.PID()))
		if err := rp.VerifyLayout(v.Process()); err != nil {
			t.Fatalf("recording layout: %v", err)
		}
		if c.Snapshot != "" {
			smgr := snapshotMgr(t, filepath.Join(filepath.Dir(path), c.Snapshot), c.Store)
			rep, err := smgr.Prime(v)
			if err != nil {
				t.Fatalf("snapshot prime: %v", err)
			}
			if rep.Installed == 0 {
				t.Fatal("snapshot primed nothing; the recorded counters cannot reproduce")
			}
		}
		res, err := v.Run()
		if err != nil {
			t.Fatalf("replay run: %v", err)
		}
		if err := rp.Finish(v, res); err != nil {
			t.Errorf("recording did not replay bit-exactly: %v", err)
		}
	}
}

// newCrasherMgr builds the scratch cache manager a case's warm run commits
// into, honoring the artifact's store-layout flag.
func newCrasherMgr(t *testing.T, c *replay.Crasher) *core.Manager {
	t.Helper()
	if !c.Store {
		return testutil.NewMgr(t)
	}
	mgr, err := core.NewManager(testutil.TempDB(t), core.WithRelocatable(), core.WithStore())
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// snapshotMgr opens a manager over a scratch copy of a committed snapshot
// directory — never over the snapshot itself, which must stay pristine in
// version control (a manager takes a .lock in its directory).
func snapshotMgr(t *testing.T, snapDir string, store bool) *core.Manager {
	t.Helper()
	scratch := testutil.TempDB(t)
	if err := copyTree(snapDir, scratch); err != nil {
		t.Fatalf("snapshot copy: %v", err)
	}
	var opts []core.ManagerOption
	if store {
		opts = append(opts, core.WithStore())
	}
	mgr, err := core.NewManager(scratch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// regenSidecars rebuilds an artifact's committed .rec and .db sidecars (and
// its Expect block) from scratch: a cold run commits a fresh database, the
// snapshot is taken, and a warm run primed from that database is recorded.
// Run via PCC_REGEN_CRASHERS=1 after a deliberate log-format or VM change.
func regenSidecars(t *testing.T, path string, c *replay.Crasher) {
	t.Helper()
	dir := filepath.Dir(path)
	mgr := newCrasherMgr(t, c)
	vc := crasherVM(t, c, c.ASLRSeed)
	if _, err := vc.Run(); err != nil {
		t.Fatalf("regen cold run: %v", err)
	}
	if _, err := mgr.Commit(vc); err != nil {
		t.Fatalf("regen commit: %v", err)
	}
	if c.Snapshot != "" {
		snapDir := filepath.Join(dir, c.Snapshot)
		if err := os.RemoveAll(snapDir); err != nil {
			t.Fatal(err)
		}
		if err := mgr.SnapshotTo(snapDir); err != nil {
			t.Fatalf("regen snapshot: %v", err)
		}
	}

	rec, err := replay.NewRecorder(nil, filepath.Join(dir, c.Recording))
	if err != nil {
		t.Fatal(err)
	}
	v := crasherVM(t, c, c.ASLRSeed, vm.WithBoundary(rec))
	err = rec.Start(replay.StartInfo{
		Program:   c.Name,
		Placement: loader.Placement(c.Placement),
		Seed:      c.ASLRSeed,
		Input:     crasherInput(t, c),
		PID:       1,
		Proc:      v.Process(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := mgr.Prime(v); err != nil {
		t.Fatalf("regen prime: %v", err)
	} else if rep.Installed == 0 {
		t.Fatal("regen primed nothing")
	}
	res, err := v.Run()
	if err != nil {
		t.Fatalf("regen warm run: %v", err)
	}
	if err := rec.Finish(v, res); err != nil {
		t.Fatal(err)
	}

	c.Expect = &replay.Expect{Exit: res.ExitCode, Insts: res.Stats.InstsExecuted}
	if _, err := replay.WriteCrasher(nil, dir, c, nil); err != nil {
		t.Fatalf("regen artifact: %v", err)
	}
	t.Logf("regenerated %s sidecars (%d events recorded)", c.Name, rec.Events())
}
