# Development entry points. `make check` is the gate every change must pass:
# formatting, lint (vet + the project's own invariant analyzers), build, and
# the full test suite under the race detector (the cache server and the
# concurrent-commit paths are only meaningfully tested with -race). `make ci`
# mirrors .github/workflows/ci.yml exactly, adding the bench-regression and
# fuzz smoke gates.

GO ?= go

# The CI smoke set: fast, fully deterministic experiments whose *_ticks
# metrics are gated against bench_baseline.json by pcc-benchdiff.
BENCH_SMOKE = fig2b,fig5a,tracelog,pipeline,dedup,fleet,optimize
MAX_REGRESS = 0.25

# Per-target budget for the CI fuzz smoke; long exploratory runs are a
# local activity (`make fuzz FUZZTIME=10m`).
FUZZTIME = 10s

.PHONY: check ci build vet lint test test-race race-smoke fmt-check bench bench-smoke bench-baseline chaos-smoke migrate-smoke fleet-smoke replay-smoke optimize-smoke fuzz-smoke guestfuzz-smoke clean

check: fmt-check lint build test-race

ci: check bench-smoke chaos-smoke migrate-smoke fleet-smoke replay-smoke optimize-smoke fuzz-smoke guestfuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet plus the repo's own analyzers (cmd/pcc-lint): fsx.FS seam bypasses in
# internal/core, blocking calls under Manager/Server locks, metric naming,
# and //pcc:hotpath allocation discipline.
lint: vet
	$(GO) run ./cmd/pcc-lint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Focused race pass over the packages with real concurrency: the VM's
# async translation pipeline, the manager's concurrent commit/prune paths,
# and the cache server. Much faster than test-race, so it runs as its own
# CI job on every push.
race-smoke:
	$(GO) test -race ./internal/vm/ ./internal/core/... ./internal/cacheserver/

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Run the smoke experiments and fail on a >25% tick regression vs the
# checked-in baseline.
bench-smoke:
	$(GO) run ./cmd/pcc-bench -json -run $(BENCH_SMOKE) > bench_current.json
	$(GO) run ./cmd/pcc-benchdiff -baseline bench_baseline.json -current bench_current.json -max-regress $(MAX_REGRESS)

# Crash-consistency sweep + self-healing check (fails on any invariant
# violation); deterministic, so also the CI chaos job.
chaos-smoke:
	$(GO) run ./cmd/pcc-bench -run chaos

# Legacy-to-store migration gate: legacy fixture database (one entry
# corrupted) -> in-place migrate -> deep verify -> warm run. Exits
# non-zero if corruption is laundered, verification fails, or a surviving
# entry stops warm-serving.
migrate-smoke:
	$(GO) run ./cmd/pcc-bench -run migrate

# Sharded-fleet gate: 4 in-process shards, Zipfian client waves, shard s0
# killed mid-run. Exits non-zero on shard imbalance > 1.5x the mean, any
# committed entry lost to the single-shard kill, or < 50% of translation
# work avoided. Deterministic, so also the CI fleet job.
fleet-smoke:
	$(GO) run ./cmd/pcc-bench -run fleet

# Record-and-replay gate: every GUI app ships a recording + cache snapshot
# and its first launch must replay bit-exactly (>= 90% of translation
# avoided, tampered recordings rejected with a diagnostic); then the crasher
# corpus — every self-packaged failure artifact under crashers/ — is rebuilt
# and re-judged.
replay-smoke:
	$(GO) run ./cmd/pcc-bench -run replay
	$(GO) test -run TestCrasherCorpus .

# Guest-IR optimizer ablation gate: each guestopt pass toggled alone, then
# all together, over warm GUI-suite runs primed from optimized caches.
# Exits non-zero if the equivalence checker rejects an engine rewrite or
# the all-passes arm saves < 10% of warm dispatch ticks. Deterministic.
optimize-smoke:
	$(GO) run ./cmd/pcc-bench -run optimize

# Coverage-guided guest-program fuzzing gate: for each known-bug plant
# (miscompiled translation, checksum-valid store-blob corruption, truncated
# recording) a short fixed-seed campaign must rediscover the bug, minimize
# it under the body budget, and package a loadable crasher; a healthy-system
# control campaign must stay silent. Fully deterministic. Long exploratory
# campaigns run locally via `go run ./cmd/pcc-fuzz -execs 5000 -corpus ...`.
guestfuzz-smoke:
	$(GO) run ./cmd/pcc-bench -run guestfuzz

# Brief native-fuzz pass over the parser trust boundaries (VR64 instruction
# decode, wire-protocol frames, cache-file bytes) plus the differential
# translate/interpret equivalence property over generated workloads. Seed
# corpora are checked in under each package's testdata/fuzz/.
fuzz-smoke:
	$(GO) test ./internal/isa/ -fuzz FuzzDecodeInstr -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cacheserver/ -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzReadCacheFile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/workload/ -fuzz FuzzTranslateEquivalence -fuzztime $(FUZZTIME)

# Refresh the checked-in baseline after an intentional performance change.
bench-baseline:
	$(GO) run ./cmd/pcc-bench -json -run $(BENCH_SMOKE) > bench_baseline.json

clean:
	$(GO) clean ./...
	rm -f bench_current.json
