# Development entry points. `make check` is the gate every change must pass:
# vet, build, and the full test suite under the race detector (the cache
# server and the concurrent-commit paths are only meaningfully tested with
# -race).

GO ?= go

.PHONY: check build vet test test-race bench clean

check: vet build test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
