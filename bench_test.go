package persistcc_test

// One benchmark per paper table/figure: each regenerates the corresponding
// experiment (internal/experiments) end to end — workload construction is
// cached per process, so the measured time is the evaluation itself.
// Run with:
//
//	go test -bench=. -benchmem
//
// Micro-benchmarks for the substrate (translation, interpretation,
// persistence round trips) follow the figure benchmarks.

import (
	"os"
	"testing"

	"persistcc/internal/core"
	"persistcc/internal/experiments"
	"persistcc/internal/guestopt"
	"persistcc/internal/loader"
	"persistcc/internal/testprog"
	"persistcc/internal/vm"
	"persistcc/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Body == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig2aTimelines(b *testing.B)      { benchExperiment(b, "fig2a") }
func BenchmarkFig2bGUIStartup(b *testing.B)     { benchExperiment(b, "fig2b") }
func BenchmarkTable1LibCode(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2CommonLibs(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig4CodeInvariance(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5aSameInput(b *testing.B)      { benchExperiment(b, "fig5a") }
func BenchmarkFig5bInstrumented(b *testing.B)   { benchExperiment(b, "fig5b") }
func BenchmarkTable3aGCCCoverage(b *testing.B)  { benchExperiment(b, "table3a") }
func BenchmarkTable3bOracleCov(b *testing.B)    { benchExperiment(b, "table3b") }
func BenchmarkFig6aGCCCrossInput(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6bOracleCross(b *testing.B)    { benchExperiment(b, "fig6b") }
func BenchmarkFig7aGCCAccumulate(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7bOracleAccum(b *testing.B)    { benchExperiment(b, "fig7b") }
func BenchmarkTable4LibCoverage(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig8InterApp(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9CacheSizes(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkOracleRegression(b *testing.B)    { benchExperiment(b, "oracle") }
func BenchmarkPreTranslate(b *testing.B)        { benchExperiment(b, "pretranslate") }
func BenchmarkAblationTraceLen(b *testing.B)    { benchExperiment(b, "ablation-tracelen") }
func BenchmarkAblationRelocatable(b *testing.B) { benchExperiment(b, "ablation-reloc") }
func BenchmarkAblationFlush(b *testing.B)       { benchExperiment(b, "ablation-flush") }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

const benchLoop = `
.text
.global _start
_start:
	movi t1, 0x08000000
	ld   s0, 0(t1)
	movi s1, 0
loop:
	beqz s0, done
	add  s1, s1, s0
	sd   s1, -8(sp)
	ld   s2, -8(sp)
	xor  s1, s1, s2
	addi s0, s0, -1
	j    loop
done:
	mv   a1, s1
	movi a0, 1
	sys
	halt
`

func benchVM(b *testing.B, native bool, iters uint64) {
	exe, libs, err := testprog.Build("bench", benchLoop, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		p, err := testprog.Load(exe, libs, loader.Config{})
		if err != nil {
			b.Fatal(err)
		}
		v := vm.New(p, vm.WithInput([]uint64{iters}))
		var res *vm.Result
		if native {
			res, err = v.RunNative()
		} else {
			res, err = v.Run()
		}
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Stats.InstsExecuted
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkInterpreter(b *testing.B)   { benchVM(b, true, 200_000) }
func BenchmarkCodeCacheExec(b *testing.B) { benchVM(b, false, 200_000) }

func BenchmarkTranslation(b *testing.B) {
	// Translation throughput: a fresh VM translating gcc's footprint once.
	gcc, err := workload.BuildSpecBenchmark("176.gcc")
	if err != nil {
		b.Fatal(err)
	}
	in := gcc.Train[0]
	b.ReportAllocs()
	b.ResetTimer()
	var translated uint64
	for i := 0; i < b.N; i++ {
		v, err := gcc.Prog.NewVM(loader.Config{}, in)
		if err != nil {
			b.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			b.Fatal(err)
		}
		translated += res.Stats.InstsTranslated
	}
	b.ReportMetric(float64(translated)/b.Elapsed().Seconds()/1e6, "Minst-translated/s")
}

func BenchmarkPersistCommit(b *testing.B) {
	gcc, err := workload.BuildSpecBenchmark("176.gcc")
	if err != nil {
		b.Fatal(err)
	}
	v, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0])
	if err != nil {
		b.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pcc-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := core.NewManager(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Commit(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistPrime(b *testing.B) {
	gcc, err := workload.BuildSpecBenchmark("176.gcc")
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pcc-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := core.NewManager(dir)
	if err != nil {
		b.Fatal(err)
	}
	v, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0])
	if err != nil {
		b.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Commit(v); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var installed int
	for i := 0; i < b.N; i++ {
		v2, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0])
		if err != nil {
			b.Fatal(err)
		}
		rep, err := mgr.Prime(v2)
		if err != nil {
			b.Fatal(err)
		}
		installed += rep.Installed
	}
	if installed == 0 {
		b.Fatal("prime installed nothing")
	}
}

func BenchmarkAssembler(b *testing.B) {
	// Assembling a realistic module (one gcc-sized region).
	prog, err := workload.BuildProgram(workload.ProgSpec{
		Name: "asmbench", Seed: 1,
		Regions: []workload.RegionSpec{{Funcs: 200, Module: 0}},
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = prog
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.BuildProgram(workload.ProgSpec{
			Name: "asmbench", Seed: 1,
			Regions: []workload.RegionSpec{{Funcs: 200, Module: 0}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmupCurve(b *testing.B) { benchExperiment(b, "warmup") }

func BenchmarkMultiProcWarmup(b *testing.B) { benchExperiment(b, "multiproc") }

func BenchmarkSpecInstrumented(b *testing.B) { benchExperiment(b, "spec-instr") }

func BenchmarkShellTools(b *testing.B) { benchExperiment(b, "shelltools") }

func BenchmarkPipelineWarmup(b *testing.B) { benchExperiment(b, "pipeline") }

func BenchmarkDedup(b *testing.B) { benchExperiment(b, "dedup") }

func BenchmarkFleetWarmup(b *testing.B) { benchExperiment(b, "fleet") }

func BenchmarkOptimizedWarmup(b *testing.B) {
	// BenchmarkStoreWarmup with the translation-time optimizer attached:
	// the cold run commits checker-proven optimized traces, and the warm
	// path primes them pre-optimized (the optimizer's early return is the
	// only per-install cost). Gated alongside the optimize experiment so
	// optimized-warm regressions surface in bench-smoke.
	gcc, err := workload.BuildSpecBenchmark("176.gcc")
	if err != nil {
		b.Fatal(err)
	}
	optOpt := func() vm.Option { return vm.WithOptimizer(guestopt.New(guestopt.All())) }
	dir, err := os.MkdirTemp("", "pcc-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := core.NewManager(dir, core.WithStore())
	if err != nil {
		b.Fatal(err)
	}
	v, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0], optOpt())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Commit(v); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var installed int
	for i := 0; i < b.N; i++ {
		v2, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0], optOpt())
		if err != nil {
			b.Fatal(err)
		}
		rep, err := mgr.Prime(v2)
		if err != nil {
			b.Fatal(err)
		}
		installed += rep.Installed
	}
	if installed == 0 {
		b.Fatal("optimized prime installed nothing")
	}
}

func BenchmarkStoreWarmup(b *testing.B) {
	// BenchmarkPersistPrime over the content-addressed store format: the
	// warm path resolves the manifest and materializes every trace from
	// shared blobs (L1 decoded map after the first iteration).
	gcc, err := workload.BuildSpecBenchmark("176.gcc")
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pcc-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := core.NewManager(dir, core.WithStore())
	if err != nil {
		b.Fatal(err)
	}
	v, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0])
	if err != nil {
		b.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Commit(v); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var installed int
	for i := 0; i < b.N; i++ {
		v2, err := gcc.Prog.NewVM(loader.Config{}, gcc.Train[0])
		if err != nil {
			b.Fatal(err)
		}
		rep, err := mgr.Prime(v2)
		if err != nil {
			b.Fatal(err)
		}
		installed += rep.Installed
	}
	if installed == 0 {
		b.Fatal("store prime installed nothing")
	}
}
