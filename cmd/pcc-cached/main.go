// Command pcc-cached is the shared persistent-cache daemon: it serves one
// cache database (internal/core) to many concurrently running VM processes
// over the internal/cacheserver wire protocol, so translations published by
// one process are reusable by every other — across executions and across
// applications.
//
// Usage:
//
//	pcc-cached -dir DB [-listen 127.0.0.1:7433] [-shards 16] [-reloc] [-v]
//	pcc-cached -dir DB -listen unix:/tmp/pcc.sock
//	pcc-cached -dir DB -metrics-addr 127.0.0.1:9100   # /metrics + /healthz
//	pcc-cached -dir DB -fleet-config fleet.json -shard-id s0   # one fleet shard
//
// Clients point pcc-run (or the persistcc façade) at the same address with
// -cache-server; they fall back to their local database if this daemon is
// unreachable, so it can be restarted at any time.
//
// With -fleet-config/-shard-id the daemon serves one shard of a fleet
// (internal/cacheserver/fleet): it listens on its shard's configured
// address (unless -listen overrides it) and answers aggregate STATS
// requests by fanning out to its peer shards, so inspecting any one daemon
// reports fleet-wide totals. Key routing itself lives in the client — the
// daemon's database holds exactly what the consistent-hash ring assigns it.
//
// With -metrics-addr, an HTTP listener additionally exposes the daemon's
// metrics registry in the Prometheus text format at /metrics and a JSON
// liveness probe at /healthz. The same families are available over the wire
// protocol's METRICS op (pcc-cachectl -server ADDR metrics).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"persistcc/internal/cacheserver"
	"persistcc/internal/cacheserver/fleet"
	"persistcc/internal/core"
	"persistcc/internal/metrics"
)

func main() {
	dir := flag.String("dir", "", "cache database directory to serve (required)")
	listen := flag.String("listen", "127.0.0.1:7433", `listen address: "host:port" or "unix:/path.sock"`)
	shards := flag.Int("shards", 0, "in-memory index shard count (0 = default)")
	reloc := flag.Bool("reloc", false, "enable relocatable translations when merging")
	storeFmt := flag.Bool("store", false, "merge publishes into the content-addressed store format (manifest + shared blobs)")
	metricsAddr := flag.String("metrics-addr", "", `HTTP address serving /metrics and /healthz (e.g. "127.0.0.1:9100"; empty disables)`)
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle this long (0 = never)")
	grace := flag.Duration("grace", 5*time.Second, "graceful-shutdown drain window for in-flight requests")
	fleetConfig := flag.String("fleet-config", "", "fleet membership JSON; this daemon serves the shard named by -shard-id")
	shardID := flag.String("shard-id", "", "this daemon's shard id within -fleet-config")
	verbose := flag.Bool("v", false, "log every publish")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: pcc-cached -dir DB [-listen ADDR]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if (*fleetConfig == "") != (*shardID == "") {
		fatal(fmt.Errorf("-fleet-config and -shard-id must be used together"))
	}

	// Fleet mode: resolve this daemon's shard and build clients for its
	// peers (aggregate-STATS fan-out). The shard's configured address is
	// the default listen address; an explicit -listen (e.g. to bind a
	// wildcard interface behind NAT) overrides it.
	var peers []*cacheserver.Client
	if *fleetConfig != "" {
		cfg, err := fleet.LoadConfig(*fleetConfig)
		if err != nil {
			fatal(err)
		}
		self := cfg.ShardIndex(*shardID)
		if self < 0 {
			fatal(fmt.Errorf("shard id %q not in %s", *shardID, *fleetConfig))
		}
		listenSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "listen" {
				listenSet = true
			}
		})
		if !listenSet {
			*listen = cfg.Shards[self].Addr
		}
		for i, s := range cfg.Shards {
			if i == self {
				continue
			}
			peers = append(peers, cacheserver.NewClient(s.Addr,
				cacheserver.WithDialTimeout(time.Second),
				cacheserver.WithIOTimeout(5*time.Second),
				cacheserver.WithRetry(0, 0)))
		}
	}

	// One registry spans the manager and the server, so /metrics exports
	// the daemon's full view: request counters next to database totals.
	reg := metrics.NewRegistry()
	mopts := []core.ManagerOption{core.WithMetrics(reg)}
	if *reloc {
		mopts = append(mopts, core.WithRelocatable())
	}
	if *storeFmt {
		mopts = append(mopts, core.WithStore())
	}
	mgr, err := core.NewManager(*dir, mopts...)
	if err != nil {
		fatal(err)
	}
	sopts := []cacheserver.Option{cacheserver.WithMetrics(reg)}
	if len(peers) > 0 {
		sopts = append(sopts, cacheserver.WithFleetPeers(peers))
	}
	if *shards > 0 {
		sopts = append(sopts, cacheserver.WithShards(*shards))
	}
	if *idle > 0 {
		sopts = append(sopts, cacheserver.WithIdleTimeout(*idle))
	}
	if *verbose {
		sopts = append(sopts, cacheserver.WithLog(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}))
	}
	srv, err := cacheserver.New(mgr, sopts...)
	if err != nil {
		fatal(err)
	}
	ln, err := cacheserver.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	if *shardID != "" {
		fmt.Fprintf(os.Stderr, "pcc-cached: serving %s on %s as fleet shard %s (%d peers)\n", *dir, ln.Addr(), *shardID, len(peers))
	} else {
		fmt.Fprintf(os.Stderr, "pcc-cached: serving %s on %s\n", *dir, ln.Addr())
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		metricsHandler := metrics.Handler(reg)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			mgr.Stats() // refresh the database gauges before snapshotting
			metricsHandler.ServeHTTP(w, r)
		})
		mux.Handle("/healthz", metrics.HealthHandler(*dir))
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "pcc-cached: metrics listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pcc-cached: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// First signal: drain — finish in-flight publishes, refuse new work.
		fmt.Fprintf(os.Stderr, "pcc-cached: draining (grace %s; signal again to force)\n", *grace)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "pcc-cached: forced shutdown")
			srv.Close()
		}()
		srv.Shutdown(*grace)
	}()
	if err := srv.Serve(ln); err != nil && err != cacheserver.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-cached:", err)
	os.Exit(1)
}
