// Command pcc-asm assembles VR64 assembly source into a relocatable VXO
// object file.
//
// Usage:
//
//	pcc-asm [-o out.vxo] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"persistcc/internal/asm"
)

func main() {
	out := flag.String("o", "", "output object path (default: source name with .vxo)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcc-asm [-o out.vxo] file.s")
		os.Exit(2)
	}
	src := flag.Arg(0)
	f, err := asm.AssembleFile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcc-asm:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(src, filepath.Ext(src)) + ".vxo"
	}
	if err := f.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "pcc-asm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d text bytes, %d data bytes, %d symbols, %d relocs\n",
		path, len(f.Text), len(f.Data), len(f.Symbols), len(f.Relocs))
}
