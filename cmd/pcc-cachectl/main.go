// Command pcc-cachectl inspects and maintains a persistent code cache
// database.
//
// Usage:
//
//	pcc-cachectl -dir DB list            # list cache entries
//	pcc-cachectl -dir DB show FILE       # per-module/trace detail
//	pcc-cachectl -dir DB stats           # per-database totals and key classes
//	pcc-cachectl -dir DB verify          # integrity-check every cache file
//	pcc-cachectl -dir DB verify -deep    # + static CFG/relocation verification
//	pcc-cachectl -dir DB prune           # drop entries whose files are gone
//	pcc-cachectl -dir DB repair          # quarantine corrupt files, rebuild index
//	pcc-cachectl -dir DB migrate         # convert legacy files to manifest+blob format
//	pcc-cachectl -dir DB compact         # deduplicating generational store compaction
//	pcc-cachectl -server ADDR stats      # same totals, from a cache daemon
//	pcc-cachectl -server ADDR metrics    # the daemon's metrics registry
//	pcc-cachectl metrics FILE            # render a pcc-run -metrics-out file
//	pcc-cachectl -fleet CONF stats       # fleet-wide totals + per-shard balance
//	pcc-cachectl -fleet CONF compact -keep N   # global utility-based eviction
//
// The metrics subcommand renders a registry snapshot — fetched live from a
// daemon over the wire protocol's METRICS op, or read from a JSON snapshot
// file written by pcc-run -metrics-out — in the Prometheus text format.
//
// -fleet takes a membership config (the same file the daemons run with).
// Fleet stats fans out to every shard and prints the per-shard balance next
// to the aggregate; fleet compact runs ShareJIT-style global cache
// management — entries ranked fleet-wide by hit frequency × translation
// cost, the top -keep retained, the rest evicted from every shard that
// holds them, and each shard's store compacted to reclaim the freed blobs.
// Note that `stats -server ADDR` against a fleet-configured daemon already
// aggregates across shards (the daemon fans out to its peers).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"persistcc/internal/cacheserver"
	"persistcc/internal/cacheserver/fleet"
	"persistcc/internal/core"
	"persistcc/internal/metrics"
	"persistcc/internal/stats"
	"persistcc/internal/store"
)

func main() {
	dir := flag.String("dir", "", "cache database directory")
	server := flag.String("server", "", `shared cache daemon address ("host:port" or "unix:/path.sock")`)
	fleetCfg := flag.String("fleet", "", "fleet membership JSON for fleet-wide stats/compact")
	keep := flag.Int("keep", 0, "with -fleet compact: entries to retain fleet-wide, ranked by utility (0 = report only)")
	flag.Parse()
	if flag.NArg() < 1 || (*dir == "" && *server == "" && *fleetCfg == "" && flag.Arg(0) != "metrics") {
		fmt.Fprintln(os.Stderr, "usage: pcc-cachectl {-dir DB | -server ADDR | -fleet CONF} {list|show FILE|stats|metrics|verify [-deep]|prune|repair|migrate|compact}")
		os.Exit(2)
	}
	if *fleetCfg != "" {
		if cmd := flag.Arg(0); cmd != "stats" && cmd != "compact" {
			fatal(fmt.Errorf("%s needs -dir or -server (only stats and compact work fleet-wide)", cmd))
		}
		fl, err := fleet.New(mustLoadFleet(*fleetCfg))
		if err != nil {
			fatal(err)
		}
		defer fl.Close()
		if flag.Arg(0) == "stats" {
			fleetStats(fl)
		} else {
			// Accept -keep after the subcommand too (flag parsing stops
			// at "compact"), matching the documented usage.
			k := *keep
			if flag.NArg() >= 3 && flag.Arg(1) == "-keep" {
				n, err := strconv.Atoi(flag.Arg(2))
				if err != nil {
					fatal(fmt.Errorf("bad -keep value %q", flag.Arg(2)))
				}
				k = n
			}
			fleetCompact(fl, k)
		}
		return
	}
	var mgr *core.Manager
	if *dir != "" {
		var err error
		mgr, err = core.NewManager(*dir)
		if err != nil {
			fatal(err)
		}
	} else if cmd := flag.Arg(0); cmd != "stats" && cmd != "metrics" {
		fatal(fmt.Errorf("%s needs -dir (only stats and metrics work over -server)", cmd))
	}
	switch flag.Arg(0) {
	case "list":
		entries, err := mgr.Entries()
		if err != nil {
			fatal(err)
		}
		tb := stats.NewTable("", "file", "application", "traces", "code pool", "data pool", "app key", "tool key")
		for _, e := range entries {
			tb.AddRow(e.File, e.AppPath, fmt.Sprintf("%d", e.Traces),
				stats.Bytes(e.CodePool), stats.Bytes(e.DataPool), e.App[:8], e.Tool[:8])
		}
		fmt.Print(tb.Render())
	case "show":
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("show needs a cache file name"))
		}
		cf, err := core.ReadCacheFile(filepath.Join(*dir, flag.Arg(1)))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("application: %s (key %s)\nVM key: %s\ntool key: %s\n",
			cf.AppPath, cf.AppKey, cf.VMKey, cf.ToolKey)
		fmt.Printf("pools: code %s, data %s\n", stats.Bytes(cf.CodePool), stats.Bytes(cf.DataPool))
		tb := stats.NewTable("mappings", "path", "base", "size", "mtime", "key")
		for _, m := range cf.Modules {
			tb.AddRow(m.Path, fmt.Sprintf("%#x", m.Base), stats.Bytes(uint64(m.Size)),
				fmt.Sprintf("%d", m.MTime), m.Key.String())
		}
		fmt.Print(tb.Render())
		perModule := make(map[int32]int)
		insts := 0
		for _, t := range cf.Traces {
			perModule[t.Module]++
			insts += len(t.Insts)
		}
		fmt.Printf("traces: %d (%d instructions)\n", len(cf.Traces), insts)
		for mi, n := range perModule {
			fmt.Printf("  %-24s %d traces\n", cf.Modules[mi].Path, n)
		}
	case "stats":
		var st *core.DBStats
		var err error
		if *server != "" {
			c := cacheserver.NewClient(*server)
			defer c.Close()
			st, err = c.Stats()
		} else {
			st, err = mgr.Stats()
		}
		if err != nil {
			fatal(err)
		}
		printDBStats(st)
	case "metrics":
		var snap *metrics.Snapshot
		var err error
		switch {
		case *server != "":
			c := cacheserver.NewClient(*server)
			defer c.Close()
			snap, err = c.ServerMetrics()
		case flag.NArg() == 2:
			var b []byte
			if b, err = os.ReadFile(flag.Arg(1)); err == nil {
				snap, err = metrics.ParseSnapshot(b)
			}
		default:
			err = fmt.Errorf("metrics needs -server ADDR or a snapshot file argument")
		}
		if err != nil {
			fatal(err)
		}
		if err := snap.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	case "verify":
		deep := flag.NArg() > 1 && flag.Arg(1) == "-deep"
		entries, err := mgr.Entries()
		if err != nil {
			fatal(err)
		}
		bad := 0
		for _, e := range entries {
			var cf *core.CacheFile
			if strings.HasSuffix(e.File, ".pcm") {
				// Store-format entry: decode the manifest and materialize it
				// from the blob store (each blob is content-verified on read).
				var man *store.Manifest
				b, err := os.ReadFile(filepath.Join(*dir, e.File))
				if err == nil {
					man, err = store.DecodeManifest(b)
				}
				if err == nil {
					cf, err = mgr.MaterializeManifest(man)
				}
				if err != nil {
					fmt.Printf("BAD  %s: %v\n", e.File, err)
					bad++
					continue
				}
			} else {
				cf, err = core.ReadCacheFile(filepath.Join(*dir, e.File))
				if err != nil {
					fmt.Printf("BAD  %s: %v\n", e.File, err)
					bad++
					continue
				}
			}
			if deep {
				if rep := cf.VerifyDeep(); !rep.OK() {
					fmt.Printf("BAD  %s: deep verification failed (%d finding(s) across %d trace(s))\n",
						e.File, len(rep.Findings), rep.Traces)
					for _, f := range rep.Findings {
						fmt.Printf("     %s\n", f)
					}
					bad++
					continue
				}
			}
			fmt.Printf("OK   %s\n", e.File)
		}
		if bad > 0 {
			os.Exit(1)
		}
	case "prune":
		rep, err := mgr.Prune()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pruned: %d stale index entries dropped, %d orphan cache files removed\n",
			rep.DroppedEntries, rep.RemovedFiles)
	case "repair":
		// Repair is meant to run when no healthy writer exists (e.g. after a
		// crash); don't wait out a crash victim's stale lock.
		rmgr, err := core.NewManager(*dir, core.WithLockTimeout(2*time.Second))
		if err != nil {
			fatal(err)
		}
		rep, err := rmgr.RecoverIndex()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scanned: %d cache files\n", rep.FilesScanned)
		fmt.Printf("quarantined: %d corrupt cache files", rep.FilesQuarantined)
		if rep.IndexQuarantined {
			fmt.Printf(" + the corrupt index")
		}
		fmt.Printf(" (moved to %s)\n", filepath.Join(*dir, core.QuarantineDir))
		fmt.Printf("rebuilt: %d index entries from verified files\n", rep.EntriesRebuilt)
		fmt.Printf("removed: %d temp files from interrupted writes\n", rep.TmpFilesRemoved)
		fmt.Printf("reclaimed: %s from the live database\n", stats.Bytes(rep.BytesReclaimed))
	case "migrate":
		// Migration, like repair, runs when no healthy writer exists.
		smgr, err := core.NewManager(*dir, core.WithStore(), core.WithLockTimeout(2*time.Second))
		if err != nil {
			fatal(err)
		}
		rep, err := smgr.MigrateToStore()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("scanned: %d legacy cache files\n", rep.Scanned)
		fmt.Printf("migrated: %d to manifest+blob format\n", rep.Migrated)
		fmt.Printf("quarantined: %d that failed verification (moved to %s)\n",
			rep.Quarantined, filepath.Join(*dir, core.QuarantineDir))
		fmt.Printf("blobs: %d written, %d shared via dedup\n", rep.BlobsAdded, rep.BlobsShared)
		if rep.BytesBefore > 0 {
			fmt.Printf("bytes: %s → %s (%.1f%% saved)\n",
				stats.Bytes(rep.BytesBefore), stats.Bytes(rep.BytesAfter),
				100*(1-float64(rep.BytesAfter)/float64(rep.BytesBefore)))
		}
	case "compact":
		smgr, err := core.NewManager(*dir, core.WithLockTimeout(2*time.Second))
		if err != nil {
			fatal(err)
		}
		rep, err := smgr.CompactStore(0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generation: %d\n", rep.Gen)
		fmt.Printf("carried: %d live blobs\n", rep.Carried)
		fmt.Printf("pruned: %d orphan blobs, %d cold blobs\n", rep.PrunedOrphans, rep.PrunedCold)
		fmt.Printf("reclaimed: %s\n", stats.Bytes(rep.ReclaimedBytes))
	default:
		fatal(fmt.Errorf("unknown subcommand %q", flag.Arg(0)))
	}
}

func printDBStats(st *core.DBStats) {
	fmt.Printf("cache files: %d\ntraces: %d\ncode pool: %s\ndata pool: %s\n",
		st.Files, st.Traces, stats.Bytes(st.CodePool), stats.Bytes(st.DataPool))
	if ss := st.Store; ss != nil {
		fmt.Printf("store: %d manifests over %d shared blobs (%s physical)\n",
			ss.Manifests, ss.Blobs, stats.Bytes(ss.BlobBytes))
		fmt.Printf("dedup: %s logical → %.1f%% saved by content addressing\n",
			stats.Bytes(ss.LogicalBytes), 100*ss.DedupRatio)
	}
	tb := stats.NewTable("key classes", "VM key", "tool key", "entries", "traces")
	for _, c := range st.Classes {
		tb.AddRow(c.VM[:8], c.Tool[:8], fmt.Sprintf("%d", c.Entries), fmt.Sprintf("%d", c.Traces))
	}
	fmt.Print(tb.Render())
}

func mustLoadFleet(path string) *fleet.Config {
	cfg, err := fleet.LoadConfig(path)
	if err != nil {
		fatal(err)
	}
	return cfg
}

// fleetStats prints the per-shard balance table, then the aggregate totals
// merged across every reachable shard.
func fleetStats(fl *fleet.Client) {
	views := fl.StatsByShard()
	tb := stats.NewTable("shards", "shard", "files", "traces", "code pool", "status")
	for _, v := range views {
		if v.Err != nil {
			tb.AddRow(v.ID, "-", "-", "-", v.Err.Error())
			continue
		}
		tb.AddRow(v.ID, fmt.Sprintf("%d", v.Stats.Files), fmt.Sprintf("%d", v.Stats.Traces),
			stats.Bytes(v.Stats.CodePool), "ok")
	}
	fmt.Print(tb.Render())
	st, err := fl.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Println("fleet totals:")
	printDBStats(st)
}

// fleetCompact runs utility-ranked global cache management: keep > 0
// retains the top entries by hit frequency × translation cost and evicts
// the rest from every shard; keep == 0 only compacts the per-shard stores.
func fleetCompact(fl *fleet.Client, keep int) {
	rep, err := fl.GlobalCompact(keep)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entries: %d fleet-wide, %d kept\n", rep.Entries, rep.Kept)
	fmt.Printf("evicted: %d shard copies (%d traces)\n", rep.Evicted, rep.EvictedTraces)
	if rep.Kept > 0 && rep.Kept < rep.Entries {
		fmt.Printf("admission floor: utility %d (hits × traces) to enter the cache\n", rep.FloorUtility)
	}
	fmt.Printf("reclaimed: %s (%d orphan blobs pruned)\n", stats.Bytes(rep.Reclaimed), rep.PrunedOrphans)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-cachectl:", err)
	os.Exit(1)
}
