// Command pcc-objdump disassembles and inspects VXO files.
//
// Usage:
//
//	pcc-objdump [-notext] [-nodata] [-norelocs] [-opt] file.vxo...
//
// -opt appends the translation-time optimizer's dry run: the text section
// split into trace-shaped regions, each instruction annotated with what
// guestopt would do to it (rewritten, removed, pinned) and by which pass,
// plus the equivalence checker's verdict per region.
package main

import (
	"flag"
	"fmt"
	"os"

	"persistcc/internal/obj"
	"persistcc/internal/objdump"
)

func main() {
	noText := flag.Bool("notext", false, "skip the text disassembly")
	noData := flag.Bool("nodata", false, "skip the data hexdump")
	noRelocs := flag.Bool("norelocs", false, "skip relocation/symbol tables")
	opt := flag.Bool("opt", false, "show the translation-time optimizer's dry run with per-pass annotations")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcc-objdump [flags] file.vxo...")
		os.Exit(2)
	}
	opts := objdump.Options{NoText: *noText, NoData: *noData, NoRelocs: *noRelocs, Opt: *opt}
	for i, path := range flag.Args() {
		if i > 0 {
			fmt.Println()
		}
		f, err := obj.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcc-objdump:", err)
			os.Exit(1)
		}
		if err := objdump.Dump(os.Stdout, f, opts); err != nil {
			fmt.Fprintln(os.Stderr, "pcc-objdump:", err)
			os.Exit(1)
		}
	}
}
