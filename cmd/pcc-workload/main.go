// Command pcc-workload generates the paper's evaluation workloads to disk
// as VXO binaries plus a JSON manifest of their inputs, runnable with
// pcc-run.
//
// Usage:
//
//	pcc-workload -suite spec|gui|oracle -out DIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"persistcc/internal/obj"
	"persistcc/internal/workload"
)

// manifest describes the generated programs and their inputs.
type manifest struct {
	Suite    string         `json:"suite"`
	Programs []manifestProg `json:"programs"`
}

type manifestProg struct {
	Name   string          `json:"name"`
	Exe    string          `json:"exe"`
	Libs   []string        `json:"libs"`
	Inputs []manifestInput `json:"inputs"`
}

type manifestInput struct {
	Name  string   `json:"name"`
	Words []uint64 `json:"words"`
}

func main() {
	suite := flag.String("suite", "", "workload suite: spec, gui or oracle")
	out := flag.String("out", "", "output directory")
	flag.Parse()
	if *suite == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: pcc-workload -suite spec|gui|oracle -out DIR")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	m := manifest{Suite: *suite}
	switch *suite {
	case "spec":
		suite, err := workload.BuildSpecSuite()
		if err != nil {
			fatal(err)
		}
		for _, b := range suite {
			mp, err := writeProgram(*out, b.Prog)
			if err != nil {
				fatal(err)
			}
			for _, in := range b.Ref {
				mp.Inputs = append(mp.Inputs, manifestInput{Name: in.Name + ".ref", Words: in.Words()})
			}
			for _, in := range b.Train {
				mp.Inputs = append(mp.Inputs, manifestInput{Name: in.Name + ".train", Words: in.Words()})
			}
			m.Programs = append(m.Programs, *mp)
		}
	case "gui":
		suite, err := workload.BuildGUISuite()
		if err != nil {
			fatal(err)
		}
		for _, app := range suite.Apps {
			mp, err := writeProgram(*out, app.Prog)
			if err != nil {
				fatal(err)
			}
			mp.Inputs = append(mp.Inputs, manifestInput{Name: app.Startup.Name, Words: app.Startup.Words()})
			m.Programs = append(m.Programs, *mp)
		}
	case "oracle":
		suite, err := workload.BuildOracleSuite()
		if err != nil {
			fatal(err)
		}
		mp, err := writeProgram(*out, suite.Prog)
		if err != nil {
			fatal(err)
		}
		for _, ph := range suite.Phases {
			mp.Inputs = append(mp.Inputs, manifestInput{Name: ph.Name, Words: ph.Words()})
		}
		m.Programs = append(m.Programs, *mp)
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}
	b, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(*out, "manifest.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d programs and %s\n", len(m.Programs), path)
}

func writeProgram(dir string, p *workload.Program) (*manifestProg, error) {
	mp := &manifestProg{Name: p.Name, Exe: p.Name + ".vxe"}
	if err := p.Exe.WriteFile(filepath.Join(dir, mp.Exe)); err != nil {
		return nil, err
	}
	for _, l := range p.Libs {
		// Shared libraries may already exist from another program; the
		// bytes are identical, so overwriting is harmless.
		if err := writeLib(dir, l); err != nil {
			return nil, err
		}
		mp.Libs = append(mp.Libs, l.Name)
	}
	return mp, nil
}

func writeLib(dir string, l *obj.File) error {
	return l.WriteFile(filepath.Join(dir, l.Name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-workload:", err)
	os.Exit(1)
}
