// Command pcc-run executes a VR64 executable — natively (interpreted) or
// under the run-time compilation system, optionally with instrumentation
// and persistent code caching.
//
// Usage:
//
//	pcc-run [flags] prog.vxe
//
// Library dependencies are resolved by module name from the directories
// given with -libpath (default: the executable's directory), expecting a
// file named exactly like the module (e.g. "libgui.so").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"persistcc/internal/cacheserver"
	"persistcc/internal/cacheserver/fleet"
	"persistcc/internal/core"
	"persistcc/internal/guestopt"
	"persistcc/internal/instr"
	"persistcc/internal/loader"
	"persistcc/internal/metrics"
	tracelog "persistcc/internal/metrics/trace"
	"persistcc/internal/obj"
	"persistcc/internal/replay"
	"persistcc/internal/stats"
	"persistcc/internal/vm"
)

func main() {
	native := flag.Bool("native", false, "interpret the original program (no translation)")
	toolName := flag.String("tool", "", "instrumentation tool: bbcount, bbcount-inst, memtrace, opcodemix, codecov, codecov-inst")
	persistDir := flag.String("persist", "", "persistent cache database directory (enables persistence)")
	cacheServer := flag.String("cache-server", "", `shared cache daemon address ("host:port" or "unix:/path.sock"); -persist becomes the local fallback database`)
	fleetConfig := flag.String("fleet-config", "", "sharded cache-server fleet membership JSON; keys route to shards by consistent hash (mutually exclusive with -cache-server)")
	interApp := flag.Bool("interapp", false, "fall back to another application's cache")
	reloc := flag.Bool("reloc", false, "enable relocatable translations")
	storeFmt := flag.Bool("store", false, "commit in the content-addressed store format (manifest + shared blobs); reads both formats either way")
	storeDir := flag.String("store-dir", "", "shared blob store directory for machine-wide dedup (default: <persist>/store)")
	verifyInstall := flag.Bool("verify-install", false, "deep-verify cached traces (CFG + relocations) before installing; failures quarantine the file and re-translate")
	optimize := flag.Bool("optimize", false, "run the translation-time optimizer (checker-proven const folding, dead-code/dead-flag elimination, load collapsing); with -persist, traces commit pre-optimized")
	inputStr := flag.String("input", "", "comma-separated input words for the guest input block")
	libpath := flag.String("libpath", "", "colon-separated library search path (default: exe dir)")
	aslr := flag.Uint64("aslr", 0, "ASLR seed (non-zero enables randomized library bases)")
	hashed := flag.Bool("hashed", false, "hashed library placement (stable across applications)")
	showStats := flag.Bool("stats", false, "print the run's cost breakdown")
	maxInsts := flag.Uint64("maxinsts", 0, "instruction budget (0 = default)")
	trace := flag.Uint64("trace", 0, "log the first N executed instructions to stderr")
	jsonOut := flag.Bool("json", false, "print machine-readable run statistics to stderr")
	smc := flag.Bool("smc", false, "detect self-modifying code (flush the cache on writes to translated pages)")
	pipelineWorkers := flag.Int("pipeline-workers", 0, "asynchronous translation pipeline with N decode workers (0 = synchronous)")
	prefetch := flag.Bool("prefetch", false, "bulk-install all index-matching persistent traces at startup and speculate their successors (implies the pipeline; needs -persist)")
	metricsOut := flag.String("metrics-out", "", "write the run's full metrics registry snapshot (JSON) to this file on exit")
	eventsOut := flag.String("events-out", "", "write the run's translate/install/prime/commit event timeline (NDJSON) to this file on exit")
	recordTo := flag.String("record", "", "record the run's nondeterministic inputs and final state to this replay log")
	replayFrom := flag.String("replay", "", "replay a recorded log: pins placement/input/pid to the recorded values and verifies the run bit-exactly (mutually exclusive with -record)")
	dumpRec := flag.String("dump-recording", "", "decode a replay log to NDJSON on stdout and exit")
	flag.Parse()
	if *dumpRec != "" {
		data, err := os.ReadFile(*dumpRec)
		if err != nil {
			fatal(err)
		}
		if err := replay.DumpNDJSON(os.Stdout, data); err != nil {
			fatal(err)
		}
		return
	}
	if *recordTo != "" && *replayFrom != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcc-run [flags] prog.vxe")
		flag.PrintDefaults()
		os.Exit(2)
	}

	exePath := flag.Arg(0)
	exe, err := obj.ReadFile(exePath)
	if err != nil {
		fatal(err)
	}
	dirs := []string{filepath.Dir(exePath)}
	if *libpath != "" {
		dirs = strings.Split(*libpath, ":")
	}
	cfg := loader.Config{
		MTime: mtimeOf(exePath),
		Resolve: func(name string) (*obj.File, int64, error) {
			for _, d := range dirs {
				p := filepath.Join(d, name)
				if f, err := obj.ReadFile(p); err == nil {
					return f, mtimeOf(p), nil
				}
			}
			return nil, 0, fmt.Errorf("library %s not found in %v", name, dirs)
		},
	}
	switch {
	case *aslr != 0:
		cfg.Placement = loader.PlaceASLR
		cfg.ASLRSeed = *aslr
	case *hashed:
		cfg.Placement = loader.PlaceHashed
	}
	var words []uint64
	if *inputStr != "" {
		for _, f := range strings.Split(*inputStr, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad input word %q: %v", f, err))
			}
			words = append(words, v)
		}
	}
	var rp *replay.Replayer
	if *replayFrom != "" {
		var err error
		rp, err = replay.Open(nil, *replayFrom)
		if err != nil {
			fatal(err)
		}
		// The recording owns the load environment and the guest inputs.
		cfg.Placement = rp.Placement()
		cfg.ASLRSeed = rp.Seed()
		words = rp.Input()
	}

	proc, err := loader.Load(exe, cfg)
	if err != nil {
		fatal(err)
	}
	var opts []vm.Option
	var tool vm.Tool
	if *toolName != "" {
		tool = instr.ByName(*toolName)
		if tool == nil {
			fatal(fmt.Errorf("unknown tool %q", *toolName))
		}
		opts = append(opts, vm.WithTool(tool))
	}
	if words != nil {
		opts = append(opts, vm.WithInput(words))
	}
	if *maxInsts > 0 {
		opts = append(opts, vm.WithMaxInsts(*maxInsts))
	}
	if *trace > 0 {
		opts = append(opts, vm.WithExecLog(os.Stderr, *trace))
	}
	if *smc {
		opts = append(opts, vm.WithSMCDetection())
	}
	if *optimize {
		opts = append(opts, vm.WithOptimizer(guestopt.New(guestopt.All())))
	}
	// One registry spans the VM, the persistence manager and the cache
	// client, so -metrics-out holds the process's entire view.
	reg := metrics.NewRegistry()
	opts = append(opts, vm.WithMetrics(reg))
	var rec *replay.Recorder
	switch {
	case rp != nil:
		if err := rp.VerifyLayout(proc); err != nil {
			fatal(err)
		}
		rp.WithMetrics(replay.NewMetrics(reg))
		opts = append(opts, vm.WithBoundary(rp), vm.WithPID(rp.PID()))
	case *recordTo != "":
		rec, err = replay.NewRecorder(nil, *recordTo)
		if err != nil {
			fatal(err)
		}
		rec.WithMetrics(replay.NewMetrics(reg))
		if err := rec.Start(replay.StartInfo{
			Program:   exe.Name,
			Placement: cfg.Placement,
			Seed:      cfg.ASLRSeed,
			Input:     words,
			PID:       1,
			Proc:      proc,
		}); err != nil {
			fatal(err)
		}
		opts = append(opts, vm.WithBoundary(rec))
	}
	var events *tracelog.Log
	if *eventsOut != "" {
		events = tracelog.NewLog(0)
		opts = append(opts, vm.WithEventLog(events))
	}
	var pipe *vm.Pipeline
	if *pipelineWorkers > 0 || *prefetch {
		if *prefetch && *persistDir == "" {
			fatal(fmt.Errorf("-prefetch needs -persist"))
		}
		workers := *pipelineWorkers
		if workers < 1 {
			workers = 1
		}
		var popts []vm.PipelineOption
		if *prefetch {
			popts = append(popts, vm.PipelinePrefetch())
		}
		pipe = vm.NewPipeline(workers, popts...)
		opts = append(opts, vm.WithPipeline(pipe))
	}
	v := vm.New(proc, opts...)

	var mgr cacheserver.Manager
	if (*cacheServer != "" || *fleetConfig != "") && *persistDir == "" {
		fatal(fmt.Errorf("-cache-server/-fleet-config needs -persist for the local fallback database"))
	}
	if *cacheServer != "" && *fleetConfig != "" {
		fatal(fmt.Errorf("-cache-server and -fleet-config are mutually exclusive"))
	}
	if *persistDir != "" {
		mopts := []core.ManagerOption{core.WithMetrics(reg)}
		if *reloc {
			mopts = append(mopts, core.WithRelocatable())
		}
		if *verifyInstall {
			mopts = append(mopts, core.WithDeepVerify())
		}
		if *storeFmt {
			mopts = append(mopts, core.WithStore())
		}
		if *storeDir != "" {
			mopts = append(mopts, core.WithStoreDir(*storeDir))
		}
		local, err := core.NewManager(*persistDir, mopts...)
		if err != nil {
			fatal(err)
		}
		mgr = local
		var fb *cacheserver.Fallback
		switch {
		case *fleetConfig != "":
			cfg, err := fleet.LoadConfig(*fleetConfig)
			if err != nil {
				fatal(err)
			}
			fc, err := fleet.New(cfg, fleet.WithMetrics(reg))
			if err != nil {
				fatal(err)
			}
			fb = cacheserver.NewFallback(fc, local)
			mgr = fb
		case *cacheServer != "":
			client := cacheserver.NewClient(*cacheServer, cacheserver.WithClientMetrics(reg))
			fb = cacheserver.NewFallback(client, local)
			mgr = fb
		}
		if pipe != nil {
			pipe.SetCommit(local.BatchCommitter(v))
		}
		var rep *core.PrimeReport
		if fb != nil && *prefetch {
			if *storeFmt {
				rep, err = fb.PrimeStoreBulk(v, *interApp)
			} else {
				rep, err = fb.PrimeBulk(v, *interApp)
			}
		} else {
			rep, err = mgr.Prime(v)
			if err == core.ErrNoCache && *interApp {
				rep, err = mgr.PrimeInterApp(v)
			}
		}
		if err != nil && err != core.ErrNoCache {
			fatal(err)
		}
		if rep.Found {
			fmt.Fprintf(os.Stderr, "pcc-run: persistent cache: %d traces installed (%d rebased, %d invalidated, %d remote)\n",
				rep.Installed, rep.Rebased, rep.Invalidated(), v.Stats().RemoteHits)
		}
	}

	var res *vm.Result
	if *native {
		res, err = v.RunNative()
	} else {
		res, err = v.Run()
	}
	if err != nil {
		fatal(err)
	}
	if rec != nil {
		if err := rec.Finish(v, res); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pcc-run: recorded %d events (%d bytes) to %s\n",
			rec.Events(), rec.Bytes(), rec.Path())
	}
	if rp != nil {
		if err := rp.Finish(v, res); err != nil {
			// pcc_replay_divergence_total matters most exactly when replay
			// fails: flush the snapshot before exiting.
			if *metricsOut != "" {
				_ = os.WriteFile(*metricsOut, v.Metrics().Snapshot().JSON(), 0o644)
			}
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pcc-run: replayed %s bit-exactly (%d events)\n",
			*replayFrom, len(rp.Log().Events))
	}
	os.Stdout.Write(res.Output)

	if mgr != nil && !*native {
		crep, err := mgr.Commit(v)
		if err != nil {
			fatal(err)
		}
		res.Stats.PersistTicks += crep.Ticks
		res.Stats.Ticks += crep.Ticks
		v.ChargePersist(crep.Ticks) // keep the registry's tick view consistent
		fmt.Fprintf(os.Stderr, "pcc-run: committed %d traces (%d new) to %s\n",
			crep.Traces, crep.NewTraces, crep.File)
	}
	if pipe != nil {
		st := &res.Stats
		fmt.Fprintf(os.Stderr, "pcc-run: pipeline: %d speculated (%d adopted, %d wasted, %d dropped), %d prefetched, %d batch commits (%d traces, %d errors)\n",
			st.SpecEnqueued, st.SpecTranslated, st.SpecWasted, st.SpecDropped,
			st.PrefetchInstalls, st.BatchCommits, st.BatchTraces, st.BatchErrors)
	}
	if cov, ok := tool.(*instr.CodeCov); ok {
		fmt.Fprintf(os.Stderr, "pcc-run: codecov: %d static instructions covered\n", cov.Count())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			ExitCode uint64
			Stats    *vm.Stats
		}{res.ExitCode, &res.Stats}); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, v.Metrics().Snapshot().JSON(), 0o644); err != nil {
			fatal(err)
		}
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		if err := events.WriteNDJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *showStats {
		st := &res.Stats
		fmt.Fprintf(os.Stderr, "exit=%d time=%s insts=%d traces=%d reused=%d dispatches=%d flushes=%d\n",
			res.ExitCode, stats.Ms(st.Ticks), st.InstsExecuted, st.TracesTranslated, st.TracesReused, st.Dispatches, st.Flushes)
		fmt.Fprintf(os.Stderr, "breakdown: trans=%s exec=%s dispatch=%s emul=%s analysis=%s persist=%s\n",
			stats.Ms(st.TransTicks), stats.Ms(st.ExecTicks),
			stats.Ms(st.DispatchTicks+st.IndirectTicks+st.LinkTicks),
			stats.Ms(st.EmulTicks), stats.Ms(st.OpTicks), stats.Ms(st.PersistTicks))
	}
	os.Exit(int(res.ExitCode & 0x7f))
}

func mtimeOf(p string) int64 {
	fi, err := os.Stat(p)
	if err != nil {
		return 0
	}
	return fi.ModTime().UnixNano()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-run:", err)
	os.Exit(1)
}
