// Command pcc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pcc-bench -list                 # list experiment ids
//	pcc-bench                       # run the full evaluation
//	pcc-bench -run fig5a,table3a    # run selected experiments
//	pcc-bench -out results.txt      # additionally write the reports
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"persistcc/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write the reports to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	var entries []experiments.Entry
	if *runIDs == "" {
		entries = experiments.Registry
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pcc-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	var sb strings.Builder
	for _, e := range entries {
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcc-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		text := rep.String()
		fmt.Print(text)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		sb.WriteString(text)
		sb.WriteString("\n")
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcc-bench:", err)
			os.Exit(1)
		}
	}
}
