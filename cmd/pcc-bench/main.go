// Command pcc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pcc-bench -list                 # list experiment ids
//	pcc-bench                       # run the full evaluation
//	pcc-bench -run fig5a,table3a    # run selected experiments
//	pcc-bench -out results.txt      # additionally write the reports
//	pcc-bench -json                 # machine-readable reports on stdout
//
// -json emits one NDJSON object per experiment with schema "pcc-bench/2":
// id, title, body, notes, wall-clock seconds, and a metrics map of the
// experiment's headline numbers. Map keys serialize in sorted order, so the
// output is byte-stable for identical results; metrics ending in "_ticks"
// are deterministic virtual-tick measurements that pcc-benchdiff gates CI
// on (see .github/workflows/ci.yml and bench_baseline.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"persistcc/internal/experiments"
)

// benchSchema versions the -json line format; pcc-benchdiff refuses files
// written under a different schema.
const benchSchema = "pcc-bench/2"

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write the reports to this file")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment instead of rendered tables")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	var entries []experiments.Entry
	if *runIDs == "" {
		entries = experiments.Registry
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pcc-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	var sb strings.Builder
	enc := json.NewEncoder(os.Stdout)
	for _, e := range entries {
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcc-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		if *jsonOut {
			if err := enc.Encode(struct {
				Schema  string             `json:"schema"`
				ID      string             `json:"id"`
				Title   string             `json:"title"`
				Body    string             `json:"body"`
				Notes   []string           `json:"notes,omitempty"`
				Seconds float64            `json:"seconds"`
				Metrics map[string]float64 `json:"metrics,omitempty"`
			}{benchSchema, rep.ID, rep.Title, rep.Body, rep.Notes, elapsed, rep.Metrics}); err != nil {
				fmt.Fprintln(os.Stderr, "pcc-bench:", err)
				os.Exit(1)
			}
		} else {
			text := rep.String()
			fmt.Print(text)
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, elapsed)
		}
		sb.WriteString(rep.String())
		sb.WriteString("\n")
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcc-bench:", err)
			os.Exit(1)
		}
	}
}
