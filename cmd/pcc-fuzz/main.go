// Command pcc-fuzz runs the coverage-guided guest-program fuzzer
// (internal/guestfuzz).
//
// Usage:
//
//	pcc-fuzz -execs 500                       # fuzz, all oracles
//	pcc-fuzz -seed 7 -corpus fuzz-corpus/     # persistent corpus
//	pcc-fuzz -oracles interp-vs-trans,cold-vs-warm
//	pcc-fuzz -plant miscompile -execs 40      # known-bug rediscovery check
//	pcc-fuzz -list-plants
//
// In normal mode findings are real bugs: each is minimized, packaged into
// -out (default crashers/pending) and the command exits 1 so CI pipelines
// notice. In -plant mode a named known-bug is injected first and the exit
// code inverts: 0 only if the fuzzer rediscovers it within the budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"persistcc/internal/guestfuzz"
	"persistcc/internal/replay"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign rng seed; (seed, execs) determines the whole run")
	execs := flag.Int("execs", 200, "mutant-evaluation budget")
	corpus := flag.String("corpus", "", "persist kept cases + coverage in this directory")
	out := flag.String("out", "", "package findings here (default: crashers/pending)")
	oracles := flag.String("oracles", "", "comma-separated oracle subset (default: all)")
	exact := flag.Bool("exact", false, "instruction-exact coverage feedback (slower, finer)")
	plant := flag.String("plant", "", "inject this known-bug and require its rediscovery")
	listPlants := flag.Bool("list-plants", false, "list known-bug plants and exit")
	jsonOut := flag.Bool("json", false, "emit campaign stats as JSON on stdout")
	verbose := flag.Bool("v", false, "log corpus growth and verdicts")
	flag.Parse()

	if *listPlants {
		for _, p := range guestfuzz.Plants() {
			fmt.Printf("%-12s %-16s %s\n", p.Name, p.Oracle, p.Note)
		}
		return
	}

	cfg := guestfuzz.Config{
		Seed:       *seed,
		MaxExecs:   *execs,
		CorpusDir:  *corpus,
		CrasherDir: *out,
		Exact:      *exact,
	}
	if *oracles != "" {
		cfg.Oracles = strings.Split(*oracles, ",")
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pcc-fuzz: "+format+"\n", args...)
		}
	}

	var planted *guestfuzz.Plant
	if *plant != "" {
		p, err := guestfuzz.PlantByName(*plant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcc-fuzz:", err)
			os.Exit(2)
		}
		planted = &p
		cfg.Hooks = p.Hooks
		if len(cfg.Oracles) == 0 {
			cfg.Oracles = []string{p.Oracle}
		}
	}

	stats, err := guestfuzz.Fuzz(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcc-fuzz:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintln(os.Stderr, "pcc-fuzz:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("pcc-fuzz: %d execs, %d kept, %d cov keys, %d corpus entries, %d findings\n",
			stats.Execs, stats.Kept, stats.CovKeys, stats.CorpusSize, len(stats.Findings))
		for _, f := range stats.Findings {
			fmt.Printf("  %-12s %-16s %3d body insts  %s\n", f.Kind, f.Oracle, f.BodySize, f.Path)
		}
	}

	if planted != nil {
		for _, f := range stats.Findings {
			if f.Oracle == planted.Oracle {
				fmt.Printf("pcc-fuzz: plant %q rediscovered as %s\n", planted.Name, f.Name)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "pcc-fuzz: plant %q NOT rediscovered within %d execs\n", planted.Name, *execs)
		os.Exit(1)
	}
	if len(stats.Findings) > 0 {
		dir := cfg.CrasherDir
		if dir == "" {
			dir = replay.DefaultDir()
		}
		fmt.Fprintf(os.Stderr, "pcc-fuzz: %d findings packaged under %s\n", len(stats.Findings), dir)
		os.Exit(1)
	}
}
