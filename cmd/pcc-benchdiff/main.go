// Command pcc-benchdiff compares two pcc-bench -json result files and fails
// when the current results regressed past a threshold — the CI perf gate.
//
// Usage:
//
//	pcc-benchdiff -baseline bench_baseline.json -current bench.json [-max-regress 0.25]
//
// Both files are NDJSON written by pcc-bench -json under schema
// "pcc-bench/2". Only metrics ending in "_ticks" are gated: virtual ticks
// are fully deterministic (no wall-clock noise), lower is better, and any
// increase beyond -max-regress (a fraction; 0.25 = +25%) of the baseline
// fails the run with exit status 1. Other metrics and wall-clock seconds
// are reported but never gated. Experiments present in only one file are
// reported and ignored, so the baseline does not have to cover every
// experiment.
//
// To refresh the baseline after an intentional performance change:
//
//	go run ./cmd/pcc-bench -json -run fig2b,fig5a,tracelog > bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

const wantSchema = "pcc-bench/2"

type result struct {
	Schema  string             `json:"schema"`
	ID      string             `json:"id"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics"`
}

func readResults(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r result
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if r.Schema != wantSchema {
			return nil, fmt.Errorf("%s:%d: schema %q, want %q (regenerate with a current pcc-bench)", path, line, r.Schema, wantSchema)
		}
		out[r.ID] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline NDJSON results (required)")
	current := flag.String("current", "", "current NDJSON results (required)")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional tick increase vs baseline")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "usage: pcc-benchdiff -baseline FILE -current FILE [-max-regress 0.25]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	base, err := readResults(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := readResults(*current)
	if err != nil {
		fatal(err)
	}

	ids := make([]string, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	failures := 0
	for _, id := range ids {
		b := base[id]
		c, ok := cur[id]
		if !ok {
			fmt.Printf("SKIP %s: not in current results\n", id)
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Metrics[k]
			cv, ok := c.Metrics[k]
			if !ok {
				fmt.Printf("SKIP %s/%s: metric missing from current results\n", id, k)
				continue
			}
			if !strings.HasSuffix(k, "_ticks") {
				continue // informational only
			}
			delta := 0.0
			if bv != 0 {
				delta = (cv - bv) / bv
			} else if cv != 0 {
				delta = 1 // regression from zero: treat as 100%
			}
			switch {
			case delta > *maxRegress:
				fmt.Printf("FAIL %s/%s: %.0f -> %.0f (%+.1f%% > +%.0f%% allowed)\n",
					id, k, bv, cv, 100*delta, 100**maxRegress)
				failures++
			case delta != 0:
				fmt.Printf("ok   %s/%s: %.0f -> %.0f (%+.1f%%)\n", id, k, bv, cv, 100*delta)
			}
		}
	}
	for id := range cur {
		if _, ok := base[id]; !ok {
			fmt.Printf("NEW  %s: not in baseline (add it with the refresh command in the doc comment)\n", id)
		}
	}
	if failures > 0 {
		fmt.Printf("pcc-benchdiff: %d metric(s) regressed beyond +%.0f%%\n", failures, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Println("pcc-benchdiff: no regressions beyond threshold")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-benchdiff:", err)
	os.Exit(1)
}
