// Command pcc-ld links relocatable VXO objects into an executable or a
// shared library.
//
// Usage:
//
//	pcc-ld -o prog.vxe [-lib] [-entry sym] [-L dep.vxl]... obj.vxo...
package main

import (
	"flag"
	"fmt"
	"os"

	"persistcc/internal/link"
	"persistcc/internal/obj"
)

type multi []string

func (m *multi) String() string     { return fmt.Sprint(*m) }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	out := flag.String("o", "", "output path (required); the module name is its base name")
	isLib := flag.Bool("lib", false, "produce a shared library instead of an executable")
	entry := flag.String("entry", "", "entry symbol (executables; default _start)")
	name := flag.String("name", "", "module name (default: base of -o)")
	var deps multi
	flag.Var(&deps, "L", "library dependency (repeatable)")
	flag.Parse()
	if *out == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcc-ld -o out [-lib] [-entry sym] [-L dep]... obj.vxo...")
		os.Exit(2)
	}

	var objects []*obj.File
	for _, p := range flag.Args() {
		f, err := obj.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		objects = append(objects, f)
	}
	var libs []*obj.File
	for _, p := range deps {
		f, err := obj.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		libs = append(libs, f)
	}
	kind := obj.KindExec
	if *isLib {
		kind = obj.KindLib
	}
	modName := *name
	if modName == "" {
		modName = baseName(*out)
	}
	f, err := link.Link(link.Input{Name: modName, Kind: kind, Objects: objects, Libs: libs, Entry: *entry})
	if err != nil {
		fatal(err)
	}
	if err := f.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s, %d text bytes, %d exports, %d dynamic relocs, needs %v\n",
		*out, f.Kind, len(f.Text), len(f.Exports), len(f.DynRelocs), f.Needed)
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc-ld:", err)
	os.Exit(1)
}
