// Command pcc-lint is the repository's invariant checker: a single-binary
// multichecker that runs the custom static-analysis passes in
// internal/analysis (fsxseam, lockheld, metricname, hotpath) over the tree.
//
// Usage:
//
//	pcc-lint [-dir DIR] [-list] [packages...]
//
// With no package patterns it checks ./... relative to -dir (default: the
// current directory). Exit status is 1 when any finding is reported, 2 on
// loader or usage errors. Findings can be suppressed per line with a
// trailing //pcc:allow-<analyzer> comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"persistcc/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pcc-lint [-dir DIR] [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcc-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcc-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pcc-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
